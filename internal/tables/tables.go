// Package tables models control-plane table-entry snapshots. Aquila
// verifies either a data-plane snapshot (P4 code + deployed entries) or the
// program under any possible entries (§2); this package provides the entry
// representation and a text format for snapshots.
package tables

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Entry is one installed table entry.
type Entry struct {
	// Keys holds one match per table key, in key order.
	Keys []KeyMatch
	// Action is the action name to run on match.
	Action string
	// Args are the action's parameter values.
	Args []uint64
	// Priority orders entries; lower value matches first.
	Priority int
}

// KeyMatch is the match condition for one key component.
type KeyMatch struct {
	Value uint64
	// Mask is the ternary mask (bits set participate in the match).
	// For exact matches the mask is all-ones; for wildcards zero.
	Mask uint64
	// PrefixLen is used for lpm keys (-1 when not lpm).
	PrefixLen int
	// IsRange selects range matching [Value, High].
	IsRange bool
	High    uint64
}

// Exact returns an exact KeyMatch.
func Exact(v uint64) KeyMatch { return KeyMatch{Value: v, Mask: ^uint64(0), PrefixLen: -1} }

// Ternary returns a value-&-mask KeyMatch.
func Ternary(v, mask uint64) KeyMatch { return KeyMatch{Value: v, Mask: mask, PrefixLen: -1} }

// LPM returns a longest-prefix KeyMatch for a key of the given width.
func LPM(v uint64, prefixLen, width int) KeyMatch {
	var mask uint64
	for i := 0; i < prefixLen; i++ {
		mask |= 1 << uint(width-1-i)
	}
	return KeyMatch{Value: v & mask, Mask: mask, PrefixLen: prefixLen}
}

// Wildcard returns a match-anything KeyMatch.
func Wildcard() KeyMatch { return KeyMatch{Mask: 0, PrefixLen: -1} }

// Range returns a range KeyMatch matching lo <= key <= hi.
func Range(lo, hi uint64) KeyMatch {
	return KeyMatch{Value: lo, High: hi, IsRange: true, PrefixLen: -1}
}

// Snapshot maps fully-qualified table names ("Control.table") to entries.
type Snapshot struct {
	entries map[string][]*Entry
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot { return &Snapshot{entries: map[string][]*Entry{}} }

// Add appends an entry to a table; priority defaults to insertion order if
// negative.
func (s *Snapshot) Add(table string, e *Entry) {
	if e.Priority < 0 {
		e.Priority = len(s.entries[table])
	}
	s.entries[table] = append(s.entries[table], e)
}

// Entries returns a table's entries sorted by priority (LPM entries sort by
// descending prefix length first, mirroring switch behaviour).
func (s *Snapshot) Entries(table string) []*Entry {
	es := append([]*Entry(nil), s.entries[table]...)
	sort.SliceStable(es, func(i, j int) bool {
		pi, pj := maxPrefix(es[i]), maxPrefix(es[j])
		if pi != pj {
			return pi > pj
		}
		return es[i].Priority < es[j].Priority
	})
	return es
}

func maxPrefix(e *Entry) int {
	p := -1
	for _, k := range e.Keys {
		if k.PrefixLen > p {
			p = k.PrefixLen
		}
	}
	return p
}

// Has reports whether the snapshot contains entries for the table.
func (s *Snapshot) Has(table string) bool { return len(s.entries[table]) > 0 }

// Tables returns the table names present, sorted.
func (s *Snapshot) Tables() []string {
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NumEntries returns the total number of entries in the snapshot.
func (s *Snapshot) NumEntries() int {
	n := 0
	for _, es := range s.entries {
		n += len(es)
	}
	return n
}

// Clone returns a deep copy of the snapshot. Clone of nil is nil (the
// "verify under any entries" snapshot clones to itself).
func (s *Snapshot) Clone() *Snapshot {
	if s == nil {
		return nil
	}
	c := NewSnapshot()
	for t, es := range s.entries {
		for _, e := range es {
			ne := *e
			ne.Keys = append([]KeyMatch(nil), e.Keys...)
			ne.Args = append([]uint64(nil), e.Args...)
			c.entries[t] = append(c.entries[t], &ne)
		}
	}
	return c
}

// Remove deletes all entries of a table.
func (s *Snapshot) Remove(table string) { delete(s.entries, table) }

// ParseSnapshot reads the snapshot text format:
//
//	# comment
//	table Ctl.fwd {
//	  10.0.0.1 -> send(3)
//	  10.1.0.0/16 -> send(4)          # lpm
//	  0x0a000000 &&& 0xff000000 -> send(5)   # ternary
//	  1..9, 7 -> mark(2)              # range + second exact key
//	  _ -> drop()
//	}
func ParseSnapshot(src string) (*Snapshot, error) {
	snap := NewSnapshot()
	var table string
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("tables: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "table "):
			if table != "" {
				return nil, errf("nested table block")
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "table "))
			rest = strings.TrimSuffix(rest, "{")
			table = strings.TrimSpace(rest)
			if table == "" {
				return nil, errf("missing table name")
			}
		case line == "}":
			if table == "" {
				return nil, errf("unmatched closing brace")
			}
			table = ""
		default:
			if table == "" {
				return nil, errf("entry outside table block")
			}
			e, err := parseEntry(line)
			if err != nil {
				return nil, errf("%v", err)
			}
			e.Priority = -1
			snap.Add(table, e)
		}
	}
	if table != "" {
		return nil, fmt.Errorf("tables: unterminated table block %q", table)
	}
	return snap, nil
}

func parseEntry(line string) (*Entry, error) {
	parts := strings.SplitN(line, "->", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("missing '->' in entry %q", line)
	}
	e := &Entry{}
	for _, k := range strings.Split(parts[0], ",") {
		k = strings.TrimSpace(k)
		km, err := parseKeyMatch(k)
		if err != nil {
			return nil, err
		}
		e.Keys = append(e.Keys, km)
	}
	act := strings.TrimSpace(parts[1])
	open := strings.Index(act, "(")
	if open < 0 {
		e.Action = act
		return e, nil
	}
	if !strings.HasSuffix(act, ")") {
		return nil, fmt.Errorf("malformed action call %q", act)
	}
	e.Action = strings.TrimSpace(act[:open])
	argStr := strings.TrimSpace(act[open+1 : len(act)-1])
	if argStr != "" {
		for _, a := range strings.Split(argStr, ",") {
			v, err := parseNum(strings.TrimSpace(a))
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, v)
		}
	}
	return e, nil
}

func parseKeyMatch(s string) (KeyMatch, error) {
	switch {
	case s == "_":
		return Wildcard(), nil
	case strings.Contains(s, "&&&"):
		parts := strings.SplitN(s, "&&&", 2)
		v, err := parseNum(strings.TrimSpace(parts[0]))
		if err != nil {
			return KeyMatch{}, err
		}
		m, err := parseNum(strings.TrimSpace(parts[1]))
		if err != nil {
			return KeyMatch{}, err
		}
		return Ternary(v, m), nil
	case strings.Contains(s, ".."):
		parts := strings.SplitN(s, "..", 2)
		lo, err := parseNum(strings.TrimSpace(parts[0]))
		if err != nil {
			return KeyMatch{}, err
		}
		hi, err := parseNum(strings.TrimSpace(parts[1]))
		if err != nil {
			return KeyMatch{}, err
		}
		return Range(lo, hi), nil
	case strings.Contains(s, "/"):
		parts := strings.SplitN(s, "/", 2)
		v, err := parseNum(strings.TrimSpace(parts[0]))
		if err != nil {
			return KeyMatch{}, err
		}
		var plen int
		if _, err := fmt.Sscanf(strings.TrimSpace(parts[1]), "%d", &plen); err != nil {
			return KeyMatch{}, fmt.Errorf("bad prefix length %q", parts[1])
		}
		// Width for LPM is assumed 32 in the text format (IPv4 prefixes);
		// the encoder re-derives the mask from the real key width.
		return LPM(v, plen, 32), nil
	default:
		v, err := parseNum(s)
		if err != nil {
			return KeyMatch{}, err
		}
		return Exact(v), nil
	}
}

func parseNum(s string) (uint64, error) {
	if strings.Count(s, ".") == 3 {
		var a, b, c, d uint64
		if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err == nil &&
			a < 256 && b < 256 && c < 256 && d < 256 {
			return a<<24 | b<<16 | c<<8 | d, nil
		}
		return 0, fmt.Errorf("bad dotted quad %q", s)
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}
