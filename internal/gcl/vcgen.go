package gcl

import (
	"fmt"
	"sort"

	"aquila/internal/smt"
)

// Violation is a potential assertion failure discovered by the encoder:
// Cond is satisfiable exactly when some execution reaches the assertion
// with its condition false.
type Violation struct {
	Label string
	Cond  *smt.Term
	Meta  interface{}
	// Reach is the path condition at the assertion (the paper's `before_i`
	// label, §5.1).
	Reach *smt.Term
	// Check is the asserted condition evaluated in the state at the
	// assertion.
	Check *smt.Term
}

// Result is the outcome of encoding a GCL program.
type Result struct {
	// Path is satisfiable iff some execution reaches the end of the
	// program with every assume holding.
	Path *smt.Term
	// Violations lists the assertion obligations in program order.
	Violations []*Violation
	// Store maps variable names to their final symbolic values.
	Store *Store
}

// nameTable interns variable names to dense indices so stores can hold
// their bindings in a flat slice instead of a string map. All stores of
// one encoding run share a table (clone propagates it), which makes
// clones a single slice copy and lets merge iterate bound names in a
// precomputed lexicographic order instead of sorting per branch join —
// the dominant cost of re-encoding a churning program over a warm
// context was exactly these per-join map copies and sorts.
type nameTable struct {
	ids    map[string]int
	names  []string
	sorted []int // name ids in lexicographic name order
	// varIDs caches the interned id per variable term: variable terms are
	// hash-consed, so pointer identity saves the string hash on every
	// Store.Get in Subst's inner loop.
	varIDs map[*smt.Term]int
}

func newNameTable() *nameTable {
	return &nameTable{ids: map[string]int{}, varIDs: map[*smt.Term]int{}}
}

// intern returns the dense id of name, creating one (and splicing it
// into the sorted order) on first sight.
func (t *nameTable) intern(name string) int {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := len(t.names)
	t.ids[name] = id
	t.names = append(t.names, name)
	at := sort.Search(len(t.sorted), func(i int) bool { return t.names[t.sorted[i]] >= name })
	t.sorted = append(t.sorted, 0)
	copy(t.sorted[at+1:], t.sorted[at:])
	t.sorted[at] = id
	return id
}

// Store is a persistent symbolic state: variable name -> current value.
type Store struct {
	tbl  *nameTable
	vals []*smt.Term // indexed by interned name id; nil = unbound
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tbl: newNameTable()} }

func (s *Store) clone() *Store {
	return &Store{tbl: s.tbl, vals: append([]*smt.Term(nil), s.vals...)}
}

func (s *Store) at(id int) *smt.Term {
	if id < len(s.vals) {
		return s.vals[id]
	}
	return nil
}

func (s *Store) setID(id int, val *smt.Term) {
	for len(s.vals) <= id {
		s.vals = append(s.vals, nil)
	}
	s.vals[id] = val
}

// Get returns the current value of a variable term, defaulting to the
// variable itself (its initial value).
func (s *Store) Get(v *smt.Term) *smt.Term {
	id, ok := s.tbl.varIDs[v]
	if !ok {
		id, ok = s.tbl.ids[v.Name]
		if !ok {
			return v
		}
		s.tbl.varIDs[v] = id
	}
	if got := s.at(id); got != nil {
		return got
	}
	return v
}

// Lookup returns the value bound to name, if any.
func (s *Store) Lookup(name string) (*smt.Term, bool) {
	id, ok := s.tbl.ids[name]
	if !ok {
		return nil, false
	}
	v := s.at(id)
	return v, v != nil
}

// Set binds a variable name to a value.
func (s *Store) Set(name string, val *smt.Term) { s.setID(s.tbl.intern(name), val) }

// Names returns the bound variable names, sorted.
func (s *Store) Names() []string {
	var out []string
	for _, id := range s.tbl.sorted {
		if s.at(id) != nil {
			out = append(out, s.tbl.names[id])
		}
	}
	return out
}

// Encoder turns GCL statements into verification conditions.
type Encoder struct {
	ctx   *smt.Ctx
	fresh int
}

// NewEncoder returns an encoder over ctx.
func NewEncoder(ctx *smt.Ctx) *Encoder { return &Encoder{ctx: ctx} }

// Ctx returns the encoder's term context.
func (e *Encoder) Ctx() *smt.Ctx { return e.ctx }

// FreshVar returns a fresh bit-vector variable (width>0) or boolean
// variable (width==0) with a reserved name.
func (e *Encoder) FreshVar(hint string, width int) *smt.Term {
	e.fresh++
	name := fmt.Sprintf("%s!%d", hint, e.fresh)
	if width == 0 {
		return e.ctx.BoolVar(name)
	}
	return e.ctx.Var(name, width)
}

// Subst substitutes store values for variables in t.
func (e *Encoder) Subst(t *smt.Term, store *Store) *smt.Term {
	memo := map[int]*smt.Term{}
	var walk func(x *smt.Term) *smt.Term
	walk = func(x *smt.Term) *smt.Term {
		if got, ok := memo[x.ID]; ok {
			return got
		}
		var out *smt.Term
		switch x.Op {
		case smt.OpBVVar, smt.OpBoolVar:
			out = store.Get(x)
		case smt.OpBVConst, smt.OpBoolConst:
			out = x
		default:
			args := make([]*smt.Term, len(x.Args))
			changed := false
			for i, a := range x.Args {
				args[i] = walk(a)
				if args[i] != a {
					changed = true
				}
			}
			if !changed {
				out = x
			} else {
				out = e.rebuild(x, args)
			}
		}
		memo[x.ID] = out
		return out
	}
	return walk(t)
}

func (e *Encoder) rebuild(x *smt.Term, args []*smt.Term) *smt.Term {
	c := e.ctx
	switch x.Op {
	case smt.OpBVNot:
		return c.BVNot(args[0])
	case smt.OpBVNeg:
		return c.BVNeg(args[0])
	case smt.OpBVAnd:
		return c.BVAnd(args[0], args[1])
	case smt.OpBVOr:
		return c.BVOr(args[0], args[1])
	case smt.OpBVXor:
		return c.BVXor(args[0], args[1])
	case smt.OpBVAdd:
		return c.BVAdd(args[0], args[1])
	case smt.OpBVSub:
		return c.BVSub(args[0], args[1])
	case smt.OpBVMul:
		return c.BVMul(args[0], args[1])
	case smt.OpBVShl:
		return c.BVShl(args[0], args[1])
	case smt.OpBVLshr:
		return c.BVLshr(args[0], args[1])
	case smt.OpBVConcat:
		return c.Concat(args[0], args[1])
	case smt.OpBVExtract:
		return c.Extract(args[0], x.Hi, x.Lo)
	case smt.OpBVIte:
		return c.Ite(args[0], args[1], args[2])
	case smt.OpNot:
		return c.Not(args[0])
	case smt.OpAnd:
		return c.And(args[0], args[1])
	case smt.OpOr:
		return c.Or(args[0], args[1])
	case smt.OpImplies:
		return c.Implies(args[0], args[1])
	case smt.OpIff:
		return c.Iff(args[0], args[1])
	case smt.OpEq:
		return c.Eq(args[0], args[1])
	case smt.OpUlt:
		return c.Ult(args[0], args[1])
	case smt.OpUle:
		return c.Ule(args[0], args[1])
	case smt.OpBoolIte:
		return c.BoolIte(args[0], args[1], args[2])
	default:
		panic(fmt.Sprintf("gcl: rebuild: unexpected op %d", x.Op))
	}
}

// Encode produces the verification conditions of s starting from the given
// store (nil means all variables start symbolic).
func (e *Encoder) Encode(s Stmt, init *Store) *Result {
	if init == nil {
		init = NewStore()
	}
	st := init.clone()
	res := &Result{Store: st}
	path := e.encode(s, st, e.ctx.True(), res)
	res.Path = path
	return res
}

// encode walks s updating store in place and returns the new path
// condition.
func (e *Encoder) encode(s Stmt, store *Store, path *smt.Term, res *Result) *smt.Term {
	c := e.ctx
	switch x := s.(type) {
	case nil, *Skip:
		return path
	case *Assign:
		store.Set(x.Var.Name, e.Subst(x.Rhs, store))
		return path
	case *Havoc:
		var w int
		if !x.Var.IsBool() {
			w = x.Var.Width
		}
		store.Set(x.Var.Name, e.FreshVar("havoc$"+x.Var.Name, w))
		return path
	case *Assume:
		return c.And(path, e.Subst(x.Cond, store))
	case *Assert:
		check := e.Subst(x.Cond, store)
		res.Violations = append(res.Violations, &Violation{
			Label: x.Label,
			Cond:  c.And(path, c.Not(check)),
			Meta:  x.Meta,
			Reach: path,
			Check: check,
		})
		return path
	case *Seq:
		for _, st := range x.Stmts {
			path = e.encode(st, store, path, res)
		}
		return path
	case *If:
		cond := e.Subst(x.Cond, store)
		thenStore := store.clone()
		elseStore := store.clone()
		thenPath := e.encode(x.Then, thenStore, c.And(path, cond), res)
		elsePath := path
		if x.Else != nil {
			elsePath = e.encode(x.Else, elseStore, c.And(path, c.Not(cond)), res)
		} else {
			elsePath = c.And(path, c.Not(cond))
		}
		e.merge(store, cond, thenStore, elseStore)
		return c.Or(thenPath, elsePath)
	case *Choice:
		b := e.FreshVar("choice", 0)
		aStore := store.clone()
		bStore := store.clone()
		aPath := e.encode(x.A, aStore, c.And(path, b), res)
		bPath := e.encode(x.B, bStore, c.And(path, c.Not(b)), res)
		e.merge(store, b, aStore, bStore)
		return c.Or(aPath, bPath)
	case *While:
		// Bounded unrolling; beyond the bound the condition is assumed
		// false (bounded verification).
		var unrolled Stmt = &Assume{Cond: c.Not(x.Cond)}
		for i := 0; i < x.Bound; i++ {
			unrolled = &If{Cond: x.Cond, Then: NewSeq(x.Body, unrolled), Else: &Skip{}}
		}
		return e.encode(unrolled, store, path, res)
	default:
		panic(fmt.Sprintf("gcl: encode: unknown statement %T", s))
	}
}

// merge writes ite(cond, a, b) for every variable that differs between the
// two branch stores. The merged names are visited in sorted order: term
// construction order assigns term IDs, and commutative constructors
// canonicalize operands by ID, so iterating the name set in map order
// would make the VC's shape — and with it the SAT variable order and the
// particular model found for multi-model assertions — vary from run to
// run.
func (e *Encoder) merge(store *Store, cond *smt.Term, a, b *Store) {
	// a and b are clones of store, so all three share one name table; the
	// table's precomputed lexicographic order replaces the per-join sort.
	tbl := a.tbl
	for _, id := range tbl.sorted {
		name := tbl.names[id]
		av, bv := a.at(id), b.at(id)
		aok, bok := av != nil, bv != nil
		switch {
		case aok && bok:
			if av == bv {
				store.Set(name, av)
			} else if av.IsBool() {
				store.Set(name, e.ctx.BoolIte(cond, av, bv))
			} else {
				store.Set(name, e.ctx.Ite(cond, av, bv))
			}
		case aok:
			// Variable assigned only in the then-branch; the else value is
			// its prior value (or the symbolic initial value).
			prior := priorValue(store, e.ctx, name, av)
			if av == prior {
				store.Set(name, av)
			} else if av.IsBool() {
				store.Set(name, e.ctx.BoolIte(cond, av, prior))
			} else {
				store.Set(name, e.ctx.Ite(cond, av, prior))
			}
		case bok:
			prior := priorValue(store, e.ctx, name, bv)
			if bv == prior {
				store.Set(name, bv)
			} else if bv.IsBool() {
				store.Set(name, e.ctx.BoolIte(cond, prior, bv))
			} else {
				store.Set(name, e.ctx.Ite(cond, prior, bv))
			}
		}
	}
}

func priorValue(store *Store, ctx *smt.Ctx, name string, like *smt.Term) *smt.Term {
	if v, ok := store.Lookup(name); ok {
		return v
	}
	// The variable's initial symbolic value: a variable term of the same
	// sort and name.
	if like.IsBool() {
		return ctx.BoolVar(name)
	}
	return ctx.Var(name, like.Width)
}
