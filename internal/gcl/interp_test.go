package gcl

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"aquila/internal/smt"
)

// concreteRun interprets a GCL statement directly over concrete values,
// resolving every Choice and Havoc from the supplied oracles. It returns
// the final environment, whether execution survived all assumes, and the
// labels of violated assertions — an independent reference semantics for
// the symbolic encoder.
type concreteRun struct {
	env      *smt.Env
	choices  []bool
	havocs   []uint64
	ci, hi   int
	violated []string
	alive    bool
}

func (r *concreteRun) nextChoice() bool {
	v := r.choices[r.ci%len(r.choices)]
	r.ci++
	return v
}

func (r *concreteRun) nextHavoc() uint64 {
	v := r.havocs[r.hi%len(r.havocs)]
	r.hi++
	return v
}

func (r *concreteRun) exec(s Stmt) {
	if !r.alive {
		return
	}
	switch x := s.(type) {
	case *Skip, nil:
	case *Assign:
		if x.Var.IsBool() {
			r.env.Bool[x.Var.Name] = smt.EvalBool(x.Rhs, r.env)
		} else {
			r.env.BV[x.Var.Name] = smt.EvalBV(x.Rhs, r.env)
		}
	case *Havoc:
		if x.Var.IsBool() {
			r.env.Bool[x.Var.Name] = r.nextChoice()
		} else {
			r.env.BV[x.Var.Name] = new(big.Int).SetUint64(r.nextHavoc())
		}
	case *Assume:
		if !smt.EvalBool(x.Cond, r.env) {
			r.alive = false
		}
	case *Assert:
		if !smt.EvalBool(x.Cond, r.env) {
			r.violated = append(r.violated, x.Label)
		}
	case *Seq:
		for _, st := range x.Stmts {
			r.exec(st)
		}
	case *If:
		if smt.EvalBool(x.Cond, r.env) {
			r.exec(x.Then)
		} else if x.Else != nil {
			r.exec(x.Else)
		}
	case *While:
		for i := 0; i < x.Bound; i++ {
			if !r.alive || !smt.EvalBool(x.Cond, r.env) {
				break
			}
			r.exec(x.Body)
		}
		if r.alive && smt.EvalBool(x.Cond, r.env) {
			r.alive = false // beyond the bound: pruned, like the encoder
		}
	case *Choice:
		if r.nextChoice() {
			r.exec(x.A)
		} else {
			r.exec(x.B)
		}
	}
}

// randStmt builds a random GCL program over variables x, y (8-bit) and
// boolean b.
func randStmt(ctx *smt.Ctx, rng *rand.Rand, depth int) Stmt {
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)
	randExpr := func() *smt.Term {
		switch rng.Intn(5) {
		case 0:
			return ctx.BVAdd(x, y)
		case 1:
			return ctx.BVSub(y, ctx.BV(uint64(rng.Intn(256)), 8))
		case 2:
			return ctx.BVAnd(x, ctx.BV(uint64(rng.Intn(256)), 8))
		case 3:
			return ctx.BV(uint64(rng.Intn(256)), 8)
		default:
			return ctx.BVXor(x, y)
		}
	}
	randCond := func() *smt.Term {
		switch rng.Intn(3) {
		case 0:
			return ctx.Ult(x, ctx.BV(uint64(rng.Intn(256)), 8))
		case 1:
			return ctx.Eq(y, ctx.BV(uint64(rng.Intn(8)), 8))
		default:
			return ctx.Ugt(ctx.BVAdd(x, y), ctx.BV(uint64(rng.Intn(256)), 8))
		}
	}
	if depth == 0 {
		tgt := x
		if rng.Intn(2) == 0 {
			tgt = y
		}
		return &Assign{Var: tgt, Rhs: randExpr()}
	}
	switch rng.Intn(6) {
	case 0:
		return &If{Cond: randCond(), Then: randStmt(ctx, rng, depth-1), Else: randStmt(ctx, rng, depth-1)}
	case 1:
		return NewSeq(randStmt(ctx, rng, depth-1), randStmt(ctx, rng, depth-1))
	case 2:
		return &Assume{Cond: randCond()}
	case 3:
		return &Assert{Cond: randCond(), Label: "a"}
	case 4:
		tgt := x
		if rng.Intn(2) == 0 {
			tgt = y
		}
		return &Assign{Var: tgt, Rhs: randExpr()}
	default:
		return &While{Cond: randCond(), Body: randStmt(ctx, rng, depth-1), Bound: 2}
	}
}

// TestQuickEncoderMatchesConcreteInterpreter is the core soundness and
// completeness property of the VC generator: on a deterministic program
// (no Choice/Havoc) with concrete inputs, the encoder reports a violation
// of assertion L exactly when the concrete interpreter does.
func TestQuickEncoderMatchesConcreteInterpreter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := smt.NewCtx()
		prog := randStmt(ctx, rng, 4)
		xv := uint64(rng.Intn(256))
		yv := uint64(rng.Intn(256))

		// Concrete execution.
		run := &concreteRun{env: smt.NewEnv(), choices: []bool{true}, havocs: []uint64{0}, alive: true}
		run.env.BV["x"] = new(big.Int).SetUint64(xv)
		run.env.BV["y"] = new(big.Int).SetUint64(yv)
		run.exec(prog)

		// Symbolic encoding with the same inputs pinned.
		e := NewEncoder(ctx)
		pinned := NewSeq(
			&Assume{Cond: ctx.Eq(ctx.Var("x", 8), ctx.BV(xv, 8))},
			&Assume{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BV(yv, 8))},
			prog,
		)
		res := e.Encode(pinned, nil)
		solver := smt.NewSolver(ctx)
		symbolicViolated := false
		for _, v := range res.Violations {
			if solver.Check(v.Cond) == smt.Sat {
				symbolicViolated = true
				break
			}
		}
		// A violation recorded before a later assume kills the run still
		// counts: the encoder evaluates each assert at its program point,
		// and subsequent assumes do not retroactively prune it.
		concreteViolated := len(run.violated) > 0
		return symbolicViolated == concreteViolated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFinalStoreMatchesConcrete checks the final variable values: for
// surviving runs, the encoder's store evaluated under the pinned inputs
// must equal the interpreter's environment.
func TestQuickFinalStoreMatchesConcrete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := smt.NewCtx()
		prog := randStmt(ctx, rng, 4)
		xv := uint64(rng.Intn(256))
		yv := uint64(rng.Intn(256))

		run := &concreteRun{env: smt.NewEnv(), choices: []bool{true}, havocs: []uint64{0}, alive: true}
		run.env.BV["x"] = new(big.Int).SetUint64(xv)
		run.env.BV["y"] = new(big.Int).SetUint64(yv)
		run.exec(prog)
		if !run.alive {
			return true // infeasible run: nothing to compare
		}

		e := NewEncoder(ctx)
		res := e.Encode(prog, nil)
		pin := smt.NewEnv()
		pin.BV["x"] = new(big.Int).SetUint64(xv)
		pin.BV["y"] = new(big.Int).SetUint64(yv)
		for _, name := range []string{"x", "y"} {
			val, ok := res.Store.Lookup(name)
			if !ok {
				val = ctx.Var(name, 8)
			}
			if smt.EvalBV(val, pin).Uint64() != run.env.BV[name].Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
