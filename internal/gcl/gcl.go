// Package gcl implements the Guarded Command Language layer of Aquila's
// pipeline (§4 of the paper): the GCL AST that component encodings compile
// into, and verification-condition generation following Dijkstra's
// predicate-transformer semantics.
//
// The VC generator performs forward symbolic encoding with ite-merging at
// joins over hash-consed terms, which yields DAG-linear formulas — the
// compact representation the paper's sequential encoding is designed to
// feed (tree-shaped naive encodings explode before they reach this layer;
// see internal/encode and internal/symexec for the baselines).
package gcl

import (
	"fmt"
	"strings"

	"aquila/internal/smt"
)

// Stmt is a GCL statement.
type Stmt interface {
	stmtNode()
	pretty(b *strings.Builder, indent string)
}

// Assign sets a variable to the value of a term. Var must be a smt
// variable term (bit-vector or boolean); Rhs must have the same sort.
type Assign struct {
	Var *smt.Term
	Rhs *smt.Term
}

// Havoc assigns an arbitrary value to a variable.
type Havoc struct {
	Var *smt.Term
}

// Assume constrains execution to states satisfying Cond.
type Assume struct {
	Cond *smt.Term
}

// Assert is a proof obligation. Label identifies it in reports; Meta
// carries source-level information for bug localization.
type Assert struct {
	Cond  *smt.Term
	Label string
	Meta  interface{}
}

// Seq is sequential composition.
type Seq struct {
	Stmts []Stmt
}

// If is a deterministic conditional.
type If struct {
	Cond *smt.Term
	Then Stmt
	Else Stmt
}

// Choice is demonic nondeterministic choice between A and B.
type Choice struct {
	A, B Stmt
}

// While is a bounded loop: the VC generator unrolls Body up to Bound times
// and then assumes the loop condition false (bounded verification, as
// Aquila does for recirculation and header stacks, §4.3/App. B.1).
type While struct {
	Cond  *smt.Term
	Body  Stmt
	Bound int
}

// Skip does nothing.
type Skip struct{}

func (*Assign) stmtNode() {}
func (*Havoc) stmtNode()  {}
func (*Assume) stmtNode() {}
func (*Assert) stmtNode() {}
func (*Seq) stmtNode()    {}
func (*If) stmtNode()     {}
func (*Choice) stmtNode() {}
func (*While) stmtNode()  {}
func (*Skip) stmtNode()   {}

// NewSeq flattens nested sequences and drops skips.
func NewSeq(stmts ...Stmt) Stmt {
	var out []Stmt
	var add func(s Stmt)
	add = func(s Stmt) {
		switch x := s.(type) {
		case nil:
			return
		case *Skip:
			return
		case *Seq:
			for _, y := range x.Stmts {
				add(y)
			}
		default:
			out = append(out, s)
		}
	}
	for _, s := range stmts {
		add(s)
	}
	switch len(out) {
	case 0:
		return &Skip{}
	case 1:
		return out[0]
	}
	return &Seq{Stmts: out}
}

// ---- pretty printing ----

func (s *Assign) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%s%s := %s;\n", in, s.Var.Name, s.Rhs)
}
func (s *Havoc) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%shavoc %s;\n", in, s.Var.Name)
}
func (s *Assume) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sassume %s;\n", in, s.Cond)
}
func (s *Assert) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sassert[%s] %s;\n", in, s.Label, s.Cond)
}
func (s *Seq) pretty(b *strings.Builder, in string) {
	for _, st := range s.Stmts {
		st.pretty(b, in)
	}
}
func (s *If) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sif (%s) {\n", in, s.Cond)
	s.Then.pretty(b, in+"  ")
	if _, isSkip := s.Else.(*Skip); !isSkip && s.Else != nil {
		fmt.Fprintf(b, "%s} else {\n", in)
		s.Else.pretty(b, in+"  ")
	}
	fmt.Fprintf(b, "%s}\n", in)
}
func (s *Choice) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%s{\n", in)
	s.A.pretty(b, in+"  ")
	fmt.Fprintf(b, "%s} [] {\n", in)
	s.B.pretty(b, in+"  ")
	fmt.Fprintf(b, "%s}\n", in)
}
func (s *While) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%swhile (%s) bound %d {\n", in, s.Cond, s.Bound)
	s.Body.pretty(b, in+"  ")
	fmt.Fprintf(b, "%s}\n", in)
}
func (s *Skip) pretty(b *strings.Builder, in string) {
	fmt.Fprintf(b, "%sskip;\n", in)
}

// Pretty renders a statement as GCL source for debugging and tests.
func Pretty(s Stmt) string {
	var b strings.Builder
	s.pretty(&b, "")
	return b.String()
}

// KindCounts tallies the statement kinds reachable in s — the structural
// signature coverage-guided fuzzing uses to tell whether a mutant drove
// the encoder through a new shape. Keys are stable lowercase kind names.
func KindCounts(s Stmt) map[string]int {
	out := map[string]int{}
	kindWalk(s, out)
	return out
}

func kindWalk(s Stmt, out map[string]int) {
	switch x := s.(type) {
	case nil:
	case *Seq:
		for _, st := range x.Stmts {
			kindWalk(st, out)
		}
	case *If:
		out["if"]++
		kindWalk(x.Then, out)
		kindWalk(x.Else, out)
	case *Choice:
		out["choice"]++
		kindWalk(x.A, out)
		kindWalk(x.B, out)
	case *While:
		out["while"]++
		kindWalk(x.Body, out)
	case *Assign:
		out["assign"]++
	case *Havoc:
		out["havoc"]++
	case *Assume:
		out["assume"]++
	case *Assert:
		out["assert"]++
	case *Skip:
		out["skip"]++
	default:
		out["other"]++
	}
}

// Size returns the number of statements (a proxy for encoded-GCL size,
// which the paper reports as number of encoded states).
func Size(s Stmt) int {
	switch x := s.(type) {
	case *Seq:
		n := 0
		for _, st := range x.Stmts {
			n += Size(st)
		}
		return n
	case *If:
		return 1 + Size(x.Then) + Size(x.Else)
	case *Choice:
		return 1 + Size(x.A) + Size(x.B)
	case *While:
		return 1 + Size(x.Body)
	case *Skip:
		return 0
	case nil:
		return 0
	default:
		return 1
	}
}
