package gcl

import (
	"strings"
	"testing"

	"aquila/internal/smt"
)

func setup() (*smt.Ctx, *Encoder) {
	ctx := smt.NewCtx()
	return ctx, NewEncoder(ctx)
}

// checkViolation returns whether any violation is satisfiable, plus a model.
func checkViolation(ctx *smt.Ctx, res *Result) (bool, *smt.Model) {
	s := smt.NewSolver(ctx)
	for _, v := range res.Violations {
		s.Assert(ctx.True()) // keep solver non-empty
		if s.Check(v.Cond) == smt.Sat {
			m := s.Model()
			s.ModelCollect(m, v.Cond)
			return true, m
		}
	}
	return false, nil
}

func TestStraightLineAssign(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)
	prog := NewSeq(
		&Assign{Var: y, Rhs: ctx.BVAdd(x, ctx.BV(1, 8))},
		&Assert{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BVAdd(x, ctx.BV(1, 8))), Label: "inc"},
	)
	res := e.Encode(prog, nil)
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d", len(res.Violations))
	}
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("y==x+1 must hold after y:=x+1")
	}
}

func TestAssertCanFail(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	prog := &Assert{Cond: ctx.Eq(x, ctx.BV(0, 8)), Label: "zero"}
	res := e.Encode(prog, nil)
	sat, m := checkViolation(ctx, res)
	if !sat {
		t.Fatal("x==0 should be violable for symbolic x")
	}
	if m.Uint64(x) == 0 {
		t.Fatal("counterexample should pick x != 0")
	}
}

func TestAssumeBlocksViolation(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	prog := NewSeq(
		&Assume{Cond: ctx.Eq(x, ctx.BV(7, 8))},
		&Assert{Cond: ctx.Eq(x, ctx.BV(7, 8)), Label: "seven"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("assume x==7 should make assert x==7 hold")
	}
}

func TestIfMerging(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)
	// if (x < 10) y := 1 else y := 2; assert y != 0
	prog := NewSeq(
		&If{
			Cond: ctx.Ult(x, ctx.BV(10, 8)),
			Then: &Assign{Var: y, Rhs: ctx.BV(1, 8)},
			Else: &Assign{Var: y, Rhs: ctx.BV(2, 8)},
		},
		&Assert{Cond: ctx.Neq(ctx.Var("y", 8), ctx.BV(0, 8)), Label: "nonzero"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("y must be 1 or 2 after the conditional")
	}
	// But assert y==1 must be violable (when x >= 10).
	prog2 := NewSeq(
		&If{
			Cond: ctx.Ult(x, ctx.BV(10, 8)),
			Then: &Assign{Var: y, Rhs: ctx.BV(1, 8)},
			Else: &Assign{Var: y, Rhs: ctx.BV(2, 8)},
		},
		&Assert{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BV(1, 8)), Label: "one"},
	)
	res2 := e.Encode(prog2, nil)
	sat, m := checkViolation(ctx, res2)
	if !sat {
		t.Fatal("assert y==1 should fail for x>=10")
	}
	if m.Uint64(x) < 10 {
		t.Fatalf("counterexample x = %d, want >= 10", m.Uint64(x))
	}
}

func TestIfWithoutElse(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)
	// if (x == 0) y := 5; assert y == 5 — violable when x != 0 (y keeps
	// its initial symbolic value).
	prog := NewSeq(
		&If{Cond: ctx.Eq(x, ctx.BV(0, 8)), Then: &Assign{Var: y, Rhs: ctx.BV(5, 8)}},
		&Assert{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BV(5, 8)), Label: "five"},
	)
	res := e.Encode(prog, nil)
	sat, m := checkViolation(ctx, res)
	if !sat {
		t.Fatal("should be violable")
	}
	if m.Uint64(x) == 0 {
		t.Fatal("counterexample must have x != 0")
	}
}

func TestChoice(t *testing.T) {
	ctx, e := setup()
	y := ctx.Var("y", 8)
	prog := NewSeq(
		&Choice{
			A: &Assign{Var: y, Rhs: ctx.BV(1, 8)},
			B: &Assign{Var: y, Rhs: ctx.BV(2, 8)},
		},
		&Assert{Cond: ctx.Ult(ctx.Var("y", 8), ctx.BV(3, 8)), Label: "lt3"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("both branches give y < 3")
	}
	prog2 := NewSeq(
		&Choice{
			A: &Assign{Var: y, Rhs: ctx.BV(1, 8)},
			B: &Assign{Var: y, Rhs: ctx.BV(2, 8)},
		},
		&Assert{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BV(1, 8)), Label: "eq1"},
	)
	res2 := e.Encode(prog2, nil)
	if sat, _ := checkViolation(ctx, res2); !sat {
		t.Fatal("demonic choice can pick y=2, violating y==1")
	}
}

func TestHavoc(t *testing.T) {
	ctx, e := setup()
	y := ctx.Var("y", 8)
	prog := NewSeq(
		&Assign{Var: y, Rhs: ctx.BV(1, 8)},
		&Havoc{Var: y},
		&Assert{Cond: ctx.Eq(ctx.Var("y", 8), ctx.BV(1, 8)), Label: "eq1"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); !sat {
		t.Fatal("havoced variable should violate y==1")
	}
}

func TestBoundedWhile(t *testing.T) {
	ctx, e := setup()
	i := ctx.Var("i", 8)
	// i := 0; while (i < 3) bound 5 { i := i + 1 }; assert i == 3
	prog := NewSeq(
		&Assign{Var: i, Rhs: ctx.BV(0, 8)},
		&While{
			Cond:  ctx.Ult(ctx.Var("i", 8), ctx.BV(3, 8)),
			Body:  &Assign{Var: i, Rhs: ctx.BVAdd(ctx.Var("i", 8), ctx.BV(1, 8))},
			Bound: 5,
		},
		&Assert{Cond: ctx.Eq(ctx.Var("i", 8), ctx.BV(3, 8)), Label: "three"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("loop should terminate with i==3")
	}
}

func TestWhileBoundTooSmallPrunes(t *testing.T) {
	ctx, e := setup()
	i := ctx.Var("i", 8)
	// Bound 2 cannot reach i==3; executions beyond the bound are pruned by
	// the final assume, so the assert trivially holds on remaining paths
	// where the loop exits... it never exits within bound, so no path
	// reaches the assert with i<3 assumed false — path condition is false
	// and violation is unsatisfiable.
	prog := NewSeq(
		&Assign{Var: i, Rhs: ctx.BV(0, 8)},
		&While{
			Cond:  ctx.Ult(ctx.Var("i", 8), ctx.BV(3, 8)),
			Body:  &Assign{Var: i, Rhs: ctx.BVAdd(ctx.Var("i", 8), ctx.BV(1, 8))},
			Bound: 2,
		},
		&Assert{Cond: ctx.Eq(ctx.Var("i", 8), ctx.BV(99, 8)), Label: "bogus"},
	)
	res := e.Encode(prog, nil)
	if sat, _ := checkViolation(ctx, res); sat {
		t.Fatal("no execution completes within bound; violation must be unsat")
	}
}

func TestSeqFlattening(t *testing.T) {
	ctx, _ := setup()
	y := ctx.Var("y", 8)
	inner := NewSeq(&Assign{Var: y, Rhs: ctx.BV(1, 8)}, &Skip{})
	outer := NewSeq(inner, NewSeq(), &Assign{Var: y, Rhs: ctx.BV(2, 8)})
	seq, ok := outer.(*Seq)
	if !ok || len(seq.Stmts) != 2 {
		t.Fatalf("flattened = %s", Pretty(outer))
	}
	if NewSeq() == nil {
		t.Fatal("empty seq should be Skip, not nil")
	}
	if _, ok := NewSeq().(*Skip); !ok {
		t.Fatal("empty seq should be Skip")
	}
}

func TestPrettyAndSize(t *testing.T) {
	ctx, _ := setup()
	y := ctx.Var("y", 8)
	prog := NewSeq(
		&Assume{Cond: ctx.Ult(y, ctx.BV(5, 8))},
		&If{Cond: ctx.Eq(y, ctx.BV(0, 8)),
			Then: &Assign{Var: y, Rhs: ctx.BV(1, 8)},
			Else: &Havoc{Var: y}},
		&Assert{Cond: ctx.True(), Label: "t"},
	)
	s := Pretty(prog)
	for _, want := range []string{"assume", "if", "havoc", "assert[t]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Pretty output missing %q:\n%s", want, s)
		}
	}
	if n := Size(prog); n != 5 { // assume, if, assign, havoc, assert
		t.Fatalf("Size = %d, want 5", n)
	}
}

func TestViolationReachAndCheck(t *testing.T) {
	ctx, e := setup()
	x := ctx.Var("x", 8)
	prog := NewSeq(
		&Assume{Cond: ctx.Ult(x, ctx.BV(10, 8))},
		&Assert{Cond: ctx.Ult(x, ctx.BV(5, 8)), Label: "lt5"},
	)
	res := e.Encode(prog, nil)
	v := res.Violations[0]
	if v.Label != "lt5" {
		t.Fatalf("label = %q", v.Label)
	}
	// Reach should be exactly the assume; Check the asserted condition.
	s := smt.NewSolver(ctx)
	s.Assert(ctx.Iff(v.Reach, ctx.Ult(x, ctx.BV(10, 8))))
	if s.Check(ctx.Not(ctx.Iff(v.Reach, ctx.Ult(x, ctx.BV(10, 8))))) != smt.Unsat {
		t.Fatal("Reach should equal the assume condition")
	}
}

// TestDAGLinearity is the scalability property behind §4: a chain of n
// conditionals produces an encoding whose DAG size grows linearly, not
// exponentially.
func TestDAGLinearity(t *testing.T) {
	sizeFor := func(n int) int {
		ctx, e := setup()
		x := ctx.Var("x", 8)
		var stmts []Stmt
		for i := 0; i < n; i++ {
			stmts = append(stmts, &If{
				Cond: ctx.Eq(ctx.Var("x", 8), ctx.BV(uint64(i), 8)),
				Then: &Assign{Var: x, Rhs: ctx.BVAdd(ctx.Var("x", 8), ctx.BV(1, 8))},
				Else: &Assign{Var: x, Rhs: ctx.BVSub(ctx.Var("x", 8), ctx.BV(1, 8))},
			})
		}
		stmts = append(stmts, &Assert{Cond: ctx.Ult(ctx.Var("x", 8), ctx.BV(255, 8)), Label: "a"})
		res := e.Encode(NewSeq(stmts...), nil)
		return smt.TermSize(res.Violations[0].Cond)
	}
	s10, s20 := sizeFor(10), sizeFor(20)
	if s20 > 3*s10 {
		t.Fatalf("encoding not DAG-linear: size(10)=%d size(20)=%d", s10, s20)
	}
}
