package genprog

import (
	"strings"
	"testing"

	"aquila/internal/encode"
	"aquila/internal/localize"
	"aquila/internal/lpi"
	"aquila/internal/progs"
	"aquila/internal/verify"
)

func TestGeneratedProgramsParse(t *testing.T) {
	for _, cfg := range []Config{
		{},
		SwitchT("small"),
		SwitchT("medium"),
		SwitchT("large"),
		{Name: "g1", Pipes: 2, ParserStates: 20, Tables: 24, WithINT: true, SeedBug: true, TTLChain: true},
	} {
		bm := Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("config %+v: %v\nsource:\n%s", cfg, err, firstLines(bm.Source, 40))
		}
		if len(prog.Pipelines) != cfg.withDefaults().Pipes {
			t.Fatalf("pipelines = %d, want %d", len(prog.Pipelines), cfg.withDefaults().Pipes)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestStructuralCalibration(t *testing.T) {
	cfg := Config{Name: "cal", Pipes: 2, ParserStates: 30, Tables: 40}
	bm := Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	// Parser depth concentrates in pipe 0 (the deep ingress parser); later
	// pipelines keep the 8-state base parser.
	deep := len(prog.Parsers["cal_P0"].States)
	if deep < cfg.ParserStates-2 || deep > cfg.ParserStates+4 {
		t.Fatalf("pipe-0 parser states = %d, want ~%d", deep, cfg.ParserStates)
	}
	if shallow := len(prog.Parsers["cal_P1"].States); shallow > 10 {
		t.Fatalf("pipe-1 parser states = %d, want the shallow base", shallow)
	}
	nTables := 0
	for _, ctl := range prog.Controls {
		nTables += len(ctl.Tables)
	}
	// +2 for the ttl/big support tables.
	if nTables < cfg.Tables || nTables > cfg.Tables+4 {
		t.Fatalf("tables = %d, want ~%d", nTables, cfg.Tables)
	}
}

func TestSeededBugFoundByVerifier(t *testing.T) {
	cfg := SwitchT("small")
	cfg.SeedBug = true
	bm := Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	specSrc := progs.InvalidHeaderAccessSpec(prog, bm.Calls)
	spec, err := lpi.Parse(specSrc)
	if err != nil {
		t.Fatalf("%v\nspec:\n%s", err, specSrc)
	}
	rep, err := verify.Run(prog, nil, spec, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Holds {
		t.Fatal("seeded invalid-header-access bug must be found")
	}
	// Without the seeded bug the property holds.
	cfg.SeedBug = false
	bm2 := Assemble(cfg)
	prog2, err := bm2.Parse()
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog2, bm2.Calls))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := verify.Run(prog2, nil, spec2, verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Holds {
		t.Fatalf("guarded program must verify:\n%s", rep2.String())
	}
}

func TestTTLChainSpecHoldsOnCleanProgram(t *testing.T) {
	cfg := SwitchT("small")
	bm := Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lpi.Parse(TTLSpec(bm.Calls))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Run(prog, TTLSnapshot(cfg, false), spec, verify.Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("clean TTL chain must verify:\n%s", rep.String())
	}
}

func TestTable4BugVariants(t *testing.T) {
	cfg := SwitchT("small")
	bm := Assemble(cfg)
	spec, err := lpi.Parse(TTLSpec(bm.Calls))
	if err != nil {
		t.Fatal(err)
	}
	t.Run("wrong-entry", func(t *testing.T) {
		prog, err := bm.Parse()
		if err != nil {
			t.Fatal(err)
		}
		res, err := localize.Localize(prog, TTLSnapshot(cfg, true), spec, localize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != localize.KindTableEntry {
			t.Fatalf("kind = %v, want table-entry:\n%s", res.Kind, res)
		}
		if len(res.Tables) != 1 || !strings.HasSuffix(res.Tables[0], "ttl_tbl") {
			t.Fatalf("tables = %v", res.Tables)
		}
	})
	for _, kind := range []BugKind{BugCodeMissing, BugCodeError} {
		t.Run(string(kind), func(t *testing.T) {
			src := InjectBug(bm.Source, kind)
			if src == bm.Source {
				t.Fatal("bug injection did not change the source")
			}
			buggy := &progs.Benchmark{Name: "buggy", Source: src, Calls: bm.Calls}
			prog, err := buggy.Parse()
			if err != nil {
				t.Fatal(err)
			}
			res, err := localize.Localize(prog, TTLSnapshot(cfg, false), spec, localize.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Kind != localize.KindProgram {
				t.Fatalf("kind = %v, want program:\n%s", res.Kind, res)
			}
			found := false
			for _, c := range res.Candidates {
				if strings.HasPrefix(c.Action, "ttl_") {
					found = true
				}
			}
			if !found {
				t.Fatalf("candidates %v should include the ttl chain", res.Candidates)
			}
		})
	}
}

func TestChainAssembly(t *testing.T) {
	cfg := SwitchT("small")
	bm := AssembleChain(cfg, 3)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pipelines) != 3 {
		t.Fatalf("pipelines = %d, want 3", len(prog.Pipelines))
	}
	if len(bm.Calls) != 3 {
		t.Fatalf("calls = %v", bm.Calls)
	}
}

func TestBigTableSpecVerifies(t *testing.T) {
	cfg := SwitchT("small")
	bm := Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	snap := BigTableSnapshot(cfg, 64)
	spec, err := lpi.Parse(BigTableSpec(cfg, bm.Calls, 0x0A000020, 32))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []encode.TableMode{encode.TableABVTree, encode.TableABVLinear, encode.TableNaive} {
		rep, err := verify.Run(prog, snap, spec, verify.Options{FindAll: true, Encode: encode.Options{Table: mode}})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds {
			t.Fatalf("mode %v: big-table lookup must verify:\n%s", mode, rep.String())
		}
	}
}

func TestTable3SuiteParses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	suite := Table3Suite()
	if len(suite) != 12 {
		t.Fatalf("suite size = %d, want 12", len(suite))
	}
	for _, bm := range suite {
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if prog.LoC == 0 {
			t.Fatalf("%s: zero LoC", bm.Name)
		}
	}
}
