package genprog

import "testing"

// TestSeedReproducible pins the generator's reproducibility contract: the
// same (Config, Seed) yields byte-identical source, and Seed 0 keeps the
// legacy output (no PRNG draw at all).
func TestSeedReproducible(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		cfg := RandomConfig(seed)
		a := Assemble(cfg)
		b := Assemble(cfg)
		if a.Source != b.Source {
			t.Fatalf("seed %d: two assemblies of the same config differ", seed)
		}
		cfg2 := RandomConfig(seed)
		if cfg != cfg2 {
			t.Fatalf("seed %d: RandomConfig not deterministic: %+v vs %+v", seed, cfg, cfg2)
		}
	}
}

// TestSeedZeroIsLegacy checks that an explicitly zero seed changes nothing
// about the historical output of a calibrated config.
func TestSeedZeroIsLegacy(t *testing.T) {
	cfg := SwitchT("small")
	base := Assemble(cfg)
	cfg.Seed = 0
	again := Assemble(cfg)
	if base.Source != again.Source {
		t.Fatal("Seed 0 must be byte-identical to the unseeded output")
	}
}

// TestDistinctSeedsVary makes sure seeds actually perturb the structure —
// otherwise the fuzzing corpus would collapse to one program.
func TestDistinctSeedsVary(t *testing.T) {
	base := SwitchT("small")
	base.Seed = 1
	a := Assemble(base)
	base.Seed = 2
	b := Assemble(base)
	if a.Source == b.Source {
		t.Fatalf("seeds 1 and 2 generated identical programs (seed variation is dead)")
	}
}

// TestRandomConfigsParse parses a spread of sampled configs; failure
// messages carry the seed so any regression is reproducible byte-for-byte.
func TestRandomConfigsParse(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		cfg := RandomConfig(seed)
		bm := Assemble(cfg)
		prog, err := bm.Parse()
		if err != nil {
			t.Fatalf("seed %d (config %+v): %v\nsource:\n%s", seed, cfg, err, firstLines(bm.Source, 40))
		}
		if len(prog.Pipelines) != cfg.withDefaults().Pipes {
			t.Fatalf("seed %d: pipelines = %d, want %d", seed, len(prog.Pipelines), cfg.withDefaults().Pipes)
		}
	}
}
