// Package genprog deterministically generates production-scale P4lite
// programs calibrated to the structural parameters Table 3 reports for the
// paper's private programs (pipelines, parser states, tables) — the
// substitution for Alibaba's proprietary sources documented in DESIGN.md.
// It also generates the vendor "switch-T" replicas used by the §8.2
// scalability experiments (Figure 11) and the §8.3 localization benchmarks
// (Table 4).
package genprog

import (
	"fmt"
	"math/rand"
	"strings"

	"aquila/internal/progs"
	"aquila/internal/tables"
)

// Config parameterizes a generated program.
type Config struct {
	// Name prefixes all component names (lets chained copies coexist).
	Name string
	// Seed selects a structural variant: key rotation, action statement
	// patterns and parser select constants are drawn from a deterministic
	// PRNG seeded with it. Seed 0 is the legacy byte-identical output, so
	// every pre-existing calibration stays pinned. The same (Config, Seed)
	// always yields byte-identical source — the reproducibility contract
	// the fuzzing engine and its repro files rely on.
	Seed int64
	// Pipes is the number of pipelines.
	Pipes int
	// ParserStates approximates the per-program parser state count.
	ParserStates int
	// Tables is the total number of tables across all pipelines.
	Tables int
	// ActionsPerTable sets the action count per table (default 2).
	ActionsPerTable int
	// StmtsPerAction pads action bodies to scale LoC (default 2).
	StmtsPerAction int
	// WithINT adds an INT-style header-stack loop to the parser (the
	// module whose complexity breaks p4v in Table 3).
	WithINT bool
	// SeedBug leaves one table per pipeline unguarded — the invalid-
	// header-access bug the Table 3 benchmark property finds.
	SeedBug bool
	// TTLChain includes the Figure 4 TTL-decrement chain in pipeline 0
	// (used by the Table 4 localization benchmarks).
	TTLChain bool
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "sw"
	}
	if c.Pipes == 0 {
		c.Pipes = 1
	}
	if c.ParserStates < 4 {
		c.ParserStates = 4
	}
	if c.Tables == 0 {
		c.Tables = 8
	}
	if c.ActionsPerTable == 0 {
		c.ActionsPerTable = 2
	}
	if c.StmtsPerAction == 0 {
		c.StmtsPerAction = 2
	}
	return c
}

// variant is the seeded structural-variation stream of one generation
// run. A nil rng reproduces the legacy (Seed 0) output exactly; otherwise
// every draw comes from a PRNG consumed in a fixed generation order, so
// the same seed always yields byte-identical source.
type variant struct {
	rng *rand.Rand
}

func (c Config) variant() *variant {
	if c.Seed == 0 {
		return &variant{}
	}
	return &variant{rng: rand.New(rand.NewSource(c.Seed))}
}

// roll returns legacy%n when unseeded, else legacy displaced by a seeded
// offset modulo n.
func (v *variant) roll(n, legacy int) int {
	if n <= 0 {
		return legacy
	}
	if v.rng == nil {
		return legacy % n
	}
	return (legacy + v.rng.Intn(n)) % n
}

// byteVal returns legacy when unseeded, else a seeded byte value.
func (v *variant) byteVal(legacy uint64) uint64 {
	if v.rng == nil {
		return legacy
	}
	return uint64(v.rng.Intn(256))
}

// RandomConfig samples a small fuzzing-scale configuration from seed. The
// same seed always returns the same Config (and, through Config.Seed, the
// same program source). Roughly half the samples carry the seeded
// invalid-header-access bug so differential campaigns exercise both
// holding and violated specifications.
func RandomConfig(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		Name:            fmt.Sprintf("fz%x", uint64(seed)&0xffff),
		Seed:            seed,
		Pipes:           1 + rng.Intn(2),
		ParserStates:    4 + rng.Intn(7),
		Tables:          2 + rng.Intn(5),
		ActionsPerTable: 1 + rng.Intn(3),
		StmtsPerAction:  1 + rng.Intn(3),
		WithINT:         rng.Intn(4) == 0,
		TTLChain:        rng.Intn(3) == 0,
		SeedBug:         rng.Intn(2) == 0,
	}
	return cfg
}

// HeaderBlock declares the shared header and metadata layout used by all
// generated programs (declared once even for chained copies).
func HeaderBlock(extraOpts int) string {
	var b strings.Builder
	b.WriteString(`// Generated header layout (shared).
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header vlan_t { bit<16> vid; bit<16> etherType; }
header ipv4_t { bit<8> ihl; bit<8> dscp; bit<16> totalLen; bit<8> ttl; bit<8> protocol; bit<16> csum; bit<32> src_ip; bit<32> dst_ip; }
header ipv6_t { bit<8> nextHdr; bit<8> hopLimit; bit<64> src_hi; bit<64> src_lo; bit<64> dst_hi; bit<64> dst_lo; }
header tcp_t { bit<16> src_port; bit<16> dst_port; bit<32> seqNo; bit<8> flags; }
header udp_t { bit<16> src_port; bit<16> dst_port; bit<16> len; }
header vxlan_t { bit<24> vni; bit<8> reserved; }
header int_h_t { bit<8> kind; bit<8> meta; }
ethernet_t eth;
vlan_t vlan;
ipv4_t ipv4;
ipv6_t ipv6;
tcp_t tcp;
udp_t udp;
vxlan_t vxlan;
int_h_t int_h;
`)
	for i := 0; i < extraOpts; i++ {
		fmt.Fprintf(&b, "header opt%d_t { bit<8> kind; bit<8> val; } opt%d_t opt%d;\n", i, i, i)
	}
	return b.String()
}

// Generate produces one benchmark program.
func Generate(cfg Config) *progs.Benchmark {
	cfg = cfg.withDefaults()
	extraStates := cfg.ParserStates - 8
	if extraStates < 0 {
		extraStates = 0
	}
	// Extra states are shared across pipelines' parsers; headers for them
	// are shared too.
	var b strings.Builder
	b.WriteString(HeaderBlock(extraChainHeaders(cfg)))
	b.WriteString(generateBody(cfg))
	bm := &progs.Benchmark{Name: cfg.Name, Source: b.String()}
	for p := 0; p < cfg.Pipes; p++ {
		bm.Calls = append(bm.Calls, fmt.Sprintf("%s_pipe%d", cfg.Name, p))
	}
	return bm
}

func extraChainHeaders(cfg Config) int {
	per := cfg.ParserStates - 8
	if per < 0 {
		per = 0
	}
	return per
}

// generateBody emits parsers, controls, deparsers and pipelines without
// the shared header block (used directly by GenerateChain). Parser depth
// is allocated unevenly: the first pipeline's parser carries the deep
// option chain (real hyper-converged switches parse the full packet at
// ingress; later pipelines parse less, App. A), so per-program parser
// complexity concentrates where it does in production.
func generateBody(cfg Config) string {
	cfg = cfg.withDefaults()
	v := cfg.variant()
	var b strings.Builder
	extra := extraChainHeaders(cfg)
	perPipe := cfg.Tables / cfg.Pipes
	if perPipe < 1 {
		perPipe = 1
	}
	for p := 0; p < cfg.Pipes; p++ {
		pipeExtra := extra
		if p > 0 {
			pipeExtra = 0 // later pipelines reuse the shallow base parser
		}
		b.WriteString(genParser(cfg, v, p, pipeExtra))
		b.WriteString(genControl(cfg, v, p, perPipe))
		b.WriteString(genDeparser(cfg, p))
		fmt.Fprintf(&b, "pipeline %s_pipe%d { parser = %s_P%d; control = %s_C%d; deparser = %s_D%d; }\n",
			cfg.Name, p, cfg.Name, p, cfg.Name, p, cfg.Name, p)
	}
	return b.String()
}

func genParser(cfg Config, v *variant, p, extra int) string {
	var b strings.Builder
	name := fmt.Sprintf("%s_P%d", cfg.Name, p)
	fmt.Fprintf(&b, "parser %s {\n", name)
	b.WriteString(`	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x8100: parse_vlan;
			0x0800: parse_ipv4;
			0x86dd: parse_ipv6;
			default: accept;
		}
	}
	state parse_vlan {
		extract(vlan);
		transition select(vlan.etherType) {
			0x0800: parse_ipv4;
			0x86dd: parse_ipv6;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			17: parse_udp;
			default: accept;
		}
	}
	state parse_ipv6 {
		extract(ipv6);
		transition select(ipv6.nextHdr) {
			6: parse_tcp;
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dst_port) {
			4789: parse_vxlan;
			default: accept;
		}
	}
	state parse_vxlan { extract(vxlan); transition chain0; }
	state parse_tcp {
		extract(tcp);
		transition select(tcp.flags) {
			1: chain0;
			default: accept;
		}
	}
`)
	// Option chain to pump the state count: a DAG with branching so the
	// naive tree expansion explodes.
	for i := 0; i < extra; i++ {
		next := fmt.Sprintf("chain%d", i+1)
		last := i == extra-1
		if last {
			if cfg.WithINT {
				next = "parse_int"
			} else {
				next = "accept"
			}
		}
		k0 := v.byteVal(0)
		k1 := v.byteVal(1)
		if k1 == k0 {
			k1 = (k0 + 1) % 256
		}
		fmt.Fprintf(&b, `	state chain%d {
		extract(opt%d);
		transition select(opt%d.kind) {
			%d: %s;
			%d: %s;
			default: accept;
		}
	}
`, i, i, i, k0, next, k1, next)
	}
	if extra == 0 {
		if cfg.WithINT {
			b.WriteString("	state chain0 { transition parse_int; }\n")
		} else {
			b.WriteString("	state chain0 { transition accept; }\n")
		}
	}
	if cfg.WithINT {
		// INT header stack: a parser loop over lookahead (App. B.1 shape).
		b.WriteString(`	state parse_int {
		transition select(lookahead<bit<8>>()) {
			7: parse_int_hdr;
			default: accept;
		}
	}
	state parse_int_hdr { extract(int_h); transition parse_int; }
`)
	}
	b.WriteString("}\n")
	return b.String()
}

// keyChoices rotates table keys over realistic fields.
var keyChoices = []struct {
	expr string
	kind string
	hdr  string
}{
	{"ipv4.dst_ip", "lpm", "ipv4"},
	{"ipv4.src_ip", "ternary", "ipv4"},
	{"eth.dst", "exact", "eth"},
	{"tcp.dst_port", "exact", "tcp"},
	{"udp.dst_port", "exact", "udp"},
	{"ipv6.dst_hi", "exact", "ipv6"},
	{"vlan.vid", "exact", "vlan"},
	{"vxlan.vni", "exact", "vxlan"},
}

func genControl(cfg Config, v *variant, p, tables int) string {
	var b strings.Builder
	name := fmt.Sprintf("%s_C%d", cfg.Name, p)
	fmt.Fprintf(&b, "control %s {\n", name)
	if cfg.TTLChain && p == 0 {
		b.WriteString(`	action ttl_copy() { md0.ttl = ipv4.ttl; }
	action ttl_dec() { md0.ttl = md0.ttl - 1; }
	action ttl_write() { ipv4.ttl = md0.ttl; }
	table ttl_tbl {
		key = { ipv4.dst_ip : exact; }
		actions = { ttl_dec; }
	}
`)
	}
	// Big table for the Figure 11b entry sweep. The action body carries a
	// realistic rewrite sequence so the naive per-entry encoding pays the
	// per-entry inlining cost the ABV design avoids (App. B.3).
	if p == 0 {
		fmt.Fprintf(&b, `	action big_set(bit<9> port, bit<16> tag) {
		std_meta.egress_spec = port;
		md%d.scratch0 = tag;
		md%d.scratch1 = md%d.scratch1 ^ tag;
		ipv4.dscp = (bit<8>)tag;
		md%d.scratch3 = md%d.scratch3 | (bit<16>)port;
		md%d.scratch2 = md%d.scratch2 + 1;
	}
	action big_drop() { drop(); }
	table big_tbl {
		key = { ipv4.dst_ip : exact; }
		actions = { big_set; big_drop; }
		default_action = big_drop;
	}
`, p, p, p, p, p, p, p)
	}
	keyOffs := make([]int, tables)
	for t := range keyOffs {
		keyOffs[t] = v.roll(len(keyChoices), p+t)
	}
	for t := 0; t < tables; t++ {
		kc := keyChoices[keyOffs[t]]
		for a := 0; a < cfg.ActionsPerTable; a++ {
			fmt.Fprintf(&b, "	action act_%d_%d(bit<16> v) {\n", t, a)
			for s := 0; s < cfg.StmtsPerAction; s++ {
				switch v.roll(5, t+a+s) {
				case 0:
					fmt.Fprintf(&b, "\t\tmd%d.scratch%d = v + %d;\n", p, s%4, t)
				case 1:
					fmt.Fprintf(&b, "\t\tstd_meta.egress_spec = (bit<9>)v;\n")
				case 2:
					fmt.Fprintf(&b, "\t\tmd%d.scratch%d = md%d.scratch%d ^ %d;\n", p, s%4, p, (s+1)%4, t+a)
				case 3:
					fmt.Fprintf(&b, "\t\tmd%d.scratch%d = v | %d;\n", p, s%4, t*2+1)
				default:
					fmt.Fprintf(&b, "\t\tmd%d.scratch%d = md%d.scratch%d + 1;\n", p, s%4, p, s%4)
				}
			}
			b.WriteString("\t}\n")
		}
		fmt.Fprintf(&b, "	action drop_%d() { drop(); }\n", t)
		fmt.Fprintf(&b, "	table t%d {\n\t\tkey = { %s : %s; }\n\t\tactions = { ", t, kc.expr, kc.kind)
		for a := 0; a < cfg.ActionsPerTable; a++ {
			fmt.Fprintf(&b, "act_%d_%d; ", t, a)
		}
		fmt.Fprintf(&b, "drop_%d; }\n\t\tdefault_action = drop_%d;\n\t}\n", t, t)
	}
	// Apply block: guard each table by the validity of the header its key
	// reads — except the seeded-bug table (the last one) when SeedBug.
	b.WriteString("	apply {\n")
	if cfg.TTLChain && p == 0 {
		b.WriteString(`		if (ipv4.isValid()) {
			ttl_copy();
			ttl_tbl.apply();
			ttl_write();
		}
`)
	}
	if p == 0 {
		b.WriteString("\t\tif (ipv4.isValid()) { big_tbl.apply(); }\n")
	}
	for t := 0; t < tables; t++ {
		kc := keyChoices[keyOffs[t]]
		buggy := cfg.SeedBug && t == tables-1
		if buggy {
			fmt.Fprintf(&b, "\t\tt%d.apply(); // BUG(seeded): missing %s.isValid() guard\n", t, kc.hdr)
		} else {
			fmt.Fprintf(&b, "\t\tif (%s.isValid()) { t%d.apply(); }\n", kc.hdr, t)
		}
	}
	b.WriteString("	}\n}\n")
	return b.String()
}

func genDeparser(cfg Config, p int) string {
	return fmt.Sprintf(`deparser %s_D%d {
	emit(eth);
	emit(vlan);
	emit(ipv4);
	emit(ipv6);
	emit(tcp);
	emit(udp);
	update_checksum(ipv4.csum, ipv4.ihl, ipv4.ttl, ipv4.protocol, ipv4.src_ip, ipv4.dst_ip);
}
`, cfg.Name, p)
}

// MetadataBlock declares the per-pipeline scratch metadata (one struct per
// pipeline index, shared by chained copies).
func MetadataBlock(pipes int) string {
	var b strings.Builder
	for p := 0; p < pipes; p++ {
		fmt.Fprintf(&b, "struct md%d_t { bit<8> ttl; bit<16> scratch0; bit<16> scratch1; bit<16> scratch2; bit<16> scratch3; } md%d_t md%d;\n", p, p, p)
	}
	return b.String()
}

// Assemble builds the full source for one config.
func Assemble(cfg Config) *progs.Benchmark {
	cfg = cfg.withDefaults()
	var b strings.Builder
	b.WriteString(HeaderBlock(extraChainHeaders(cfg)))
	b.WriteString(MetadataBlock(cfg.Pipes))
	b.WriteString(generateBody(cfg))
	bm := &progs.Benchmark{Name: cfg.Name, Source: b.String()}
	for p := 0; p < cfg.Pipes; p++ {
		bm.Calls = append(bm.Calls, fmt.Sprintf("%s_pipe%d", cfg.Name, p))
	}
	return bm
}

// AssembleChain concatenates k copies of the config into one program (the
// Figure 11a workload: k switch-T programs connected in one pipeline).
func AssembleChain(cfg Config, k int) *progs.Benchmark {
	cfg = cfg.withDefaults()
	var b strings.Builder
	b.WriteString(HeaderBlock(extraChainHeaders(cfg)))
	b.WriteString(MetadataBlock(cfg.Pipes))
	bm := &progs.Benchmark{Name: fmt.Sprintf("%s-x%d", cfg.Name, k)}
	for i := 0; i < k; i++ {
		c := cfg
		c.Name = fmt.Sprintf("%s%d", cfg.Name, i)
		b.WriteString(generateBody(c))
		for p := 0; p < cfg.Pipes; p++ {
			bm.Calls = append(bm.Calls, fmt.Sprintf("%s_pipe%d", c.Name, p))
		}
	}
	bm.Source = b.String()
	return bm
}

// BugKind selects a Table 4 bug variant for the TTL chain.
type BugKind string

// Table 4 bug kinds.
const (
	BugNone        BugKind = ""
	BugWrongEntry  BugKind = "wrong-entry"  // snapshot installs a non-matching key
	BugCodeMissing BugKind = "code-missing" // the decrement statement is removed
	BugCodeError   BugKind = "code-error"   // the decrement uses a wrong constant
)

// InjectBug rewrites a generated source with the requested TTL-chain bug.
func InjectBug(source string, kind BugKind) string {
	switch kind {
	case BugCodeMissing:
		return strings.Replace(source,
			"action ttl_dec() { md0.ttl = md0.ttl - 1; }",
			"action ttl_dec() { md0.ttl = md0.ttl; } // BUG: decrement missing", 1)
	case BugCodeError:
		return strings.Replace(source,
			"action ttl_dec() { md0.ttl = md0.ttl - 1; }",
			"action ttl_dec() { md0.ttl = md0.ttl - 2; } // BUG: wrong constant", 1)
	default:
		return source
	}
}

// TTLSnapshot installs the ttl_tbl entry; wrong selects the Table 4
// wrong-entry bug (a key that never matches the spec's packet).
func TTLSnapshot(cfg Config, wrong bool) *tables.Snapshot {
	snap := tables.NewSnapshot()
	key := uint64(0x0A000001)
	if wrong {
		key = 0x0B0B0B0B
	}
	snap.Add(cfg.withDefaults().Name+"_C0.ttl_tbl", &tables.Entry{
		Keys: []tables.KeyMatch{tables.Exact(key)}, Action: "ttl_dec", Priority: -1})
	return snap
}

// TTLSpec is the localization spec for the TTL chain of a generated
// program: the packet to 10.0.0.1 must leave with its TTL decremented.
func TTLSpec(calls []string) string {
	var b strings.Builder
	b.WriteString(`assumption {
	init {
		pkt.$order == <eth ipv4 tcp>;
		pkt.eth.etherType == 0x0800;
		pkt.ipv4.protocol == 6;
		pkt.ipv4.dst_ip == 10.0.0.1;
		pkt.ipv4.ttl > 1;
	}
}
assertion {
	ttl_dec = { ipv4.ttl == @pkt.ipv4.ttl - 1; }
}
program {
	assume(init);
`)
	for _, c := range calls {
		fmt.Fprintf(&b, "\tcall(%s);\n", c)
	}
	b.WriteString("\tassert(ttl_dec);\n}\n")
	return b.String()
}

// BigTableSnapshot generates n exact entries for pipe-0's big_tbl — the
// Figure 11b workload.
func BigTableSnapshot(cfg Config, n int) *tables.Snapshot {
	snap := tables.NewSnapshot()
	tbl := cfg.withDefaults().Name + "_C0.big_tbl"
	for i := 0; i < n; i++ {
		snap.Add(tbl, &tables.Entry{
			Keys:     []tables.KeyMatch{tables.Exact(uint64(0x0A000000 + i))},
			Action:   "big_set",
			Args:     []uint64{uint64(i % 500), uint64(i % 65536)},
			Priority: -1,
		})
	}
	return snap
}

// BigTableSpec checks one concrete lookup against the big table — the
// Figure 11b property.
func BigTableSpec(cfg Config, calls []string, dst uint64, port uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, `assumption {
	init {
		pkt.$order == <eth ipv4 tcp>;
		pkt.eth.etherType == 0x0800;
		pkt.ipv4.protocol == 6;
		pkt.ipv4.dst_ip == %d;
	}
}
assertion {
	lookup = { match(%s_C0.big_tbl, big_set); }
}
program {
	assume(init);
`, dst, cfg.withDefaults().Name)
	for _, c := range calls {
		fmt.Fprintf(&b, "\tcall(%s);\n", c)
	}
	b.WriteString("\tassert(lookup);\n}\n")
	_ = port
	return b.String()
}

// Table3Suite returns the full 12-program suite of Table 3: the five
// hand-written replicas plus seven generated programs calibrated to the
// paper's structural columns.
func Table3Suite() []*progs.Benchmark {
	suite := progs.HandWrittenSuite()
	// ParserStates parameterizes the deep ingress parser (pipe 0); later
	// pipelines keep the 8-state base parser, so the per-program total is
	// ParserStates + 8×(Pipes-1), calibrated to Table 3's column.
	gen := []Config{
		{Name: "netcache", Pipes: 1, ParserStates: 17, Tables: 96, ActionsPerTable: 2, StmtsPerAction: 2, SeedBug: true},
		{Name: "switch_noint", Pipes: 1, ParserStates: 59, Tables: 104, ActionsPerTable: 3, StmtsPerAction: 3, SeedBug: true},
		{Name: "switch_int", Pipes: 1, ParserStates: 64, Tables: 120, ActionsPerTable: 3, StmtsPerAction: 3, WithINT: true, SeedBug: true},
		{Name: "vendor_switch", Pipes: 2, ParserStates: 24, Tables: 141, ActionsPerTable: 3, StmtsPerAction: 3, SeedBug: true, TTLChain: true},
		{Name: "prod1", Pipes: 4, ParserStates: 30, Tables: 152, ActionsPerTable: 3, StmtsPerAction: 4, SeedBug: true},
		{Name: "prod2", Pipes: 4, ParserStates: 34, Tables: 160, ActionsPerTable: 3, StmtsPerAction: 4, SeedBug: true},
		{Name: "prod3", Pipes: 6, ParserStates: 74, Tables: 126, ActionsPerTable: 3, StmtsPerAction: 3, WithINT: true, SeedBug: true},
	}
	names := []string{"NetCache", "Switch BMv2 w/o INT", "Switch BMv2", "Switch from vendor",
		"Production Program 1", "Production Program 2", "Production Program 3"}
	for i, cfg := range gen {
		bm := Assemble(cfg)
		bm.Name = names[i]
		suite = append(suite, bm)
	}
	return suite
}

// SwitchT returns the vendor switch-T replica of §8.2/§8.3 at the given
// scale. Per Table 4: Large is the original; Medium disables the
// DTEL/sFlow-like half of the tables; Small additionally disables QoS,
// mirroring, L2 and IPv6 processing.
func SwitchT(scale string) Config {
	switch scale {
	case "small":
		return Config{Name: "swt", Pipes: 1, ParserStates: 12, Tables: 12, ActionsPerTable: 2, StmtsPerAction: 2, TTLChain: true}
	case "medium":
		return Config{Name: "swt", Pipes: 1, ParserStates: 20, Tables: 28, ActionsPerTable: 2, StmtsPerAction: 2, TTLChain: true}
	default: // large
		return Config{Name: "swt", Pipes: 2, ParserStates: 30, Tables: 48, ActionsPerTable: 3, StmtsPerAction: 2, TTLChain: true}
	}
}
