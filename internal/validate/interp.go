package validate

import (
	"fmt"

	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// interp is the semantic generator of §6: an independent big-step symbolic
// evaluator in the style of Gauntlet that computes the output value of
// every header field directly, sharing no code with the GCL encoder. The
// only coupling is the variable-naming convention, which plays the role of
// the refinement relation R (§6: "we simply require that every header
// field in s_A is identical to its counterpart in s_X").
type interp struct {
	ctx       *smt.Ctx
	prog      *p4.Program
	snap      *tables.Snapshot
	loopBound int
	hashSeq   int

	headerIDs map[string]uint64
	headers   []string
}

func newInterp(ctx *smt.Ctx, prog *p4.Program, snap *tables.Snapshot, loopBound int) *interp {
	ip := &interp{ctx: ctx, prog: prog, snap: snap, loopBound: loopBound, headerIDs: map[string]uint64{}}
	i := 0
	for _, inst := range prog.Instances {
		if inst.IsHeader {
			i++
			ip.headerIDs[inst.Name] = uint64(i)
			ip.headers = append(ip.headers, inst.Name)
		}
	}
	return ip
}

// state is a symbolic machine state: a direct map from variable names to
// value terms, plus the well-formedness (assumption) constraint collected
// along the way. The extraction index lives in vals as pkt.$extidx and is
// kept symbolic: after a select whose branches extract to different
// depths, its merged value is an ite, matching the encoder's ExtIdxVar.
type state struct {
	vals map[string]*smt.Term
	wf   *smt.Term
}

func (ip *interp) initialState() *state {
	s := &state{vals: map[string]*smt.Term{}, wf: ip.ctx.True()}
	c := ip.ctx
	for _, h := range ip.headers {
		s.vals[h+".$valid"] = c.False()
	}
	for _, f := range []string{"drop", "to_cpu", "recirc", "resubmit", "mirror"} {
		s.vals["std_meta."+f] = c.BV(0, 1)
	}
	s.vals["std_meta.recirc_count"] = c.BV(0, 8)
	s.vals["pkt.$extidx"] = c.BV(0, 8)
	s.vals["pkt.$outidx"] = c.BV(0, 8)
	return s
}

func (s *state) clone() *state {
	c := &state{vals: make(map[string]*smt.Term, len(s.vals)), wf: s.wf}
	for k, v := range s.vals {
		c.vals[k] = v
	}
	return c
}

// get reads a variable, defaulting to its symbolic initial value.
func (ip *interp) get(s *state, name string, width int) *smt.Term {
	if v, ok := s.vals[name]; ok {
		return v
	}
	if width == 0 {
		return ip.ctx.BoolVar(name)
	}
	return ip.ctx.Var(name, width)
}

func (ip *interp) fieldWidth(inst, field string) int {
	return ip.prog.InstanceType(inst).Field(field).Width
}

// merge combines two successor states under a branch condition.
func (ip *interp) merge(cond *smt.Term, a, b *state) *state {
	c := ip.ctx
	out := &state{vals: map[string]*smt.Term{}, wf: c.BoolIte(cond, a.wf, b.wf)}
	names := map[string]bool{}
	for k := range a.vals {
		names[k] = true
	}
	for k := range b.vals {
		names[k] = true
	}
	for name := range names {
		av, aok := a.vals[name]
		bv, bok := b.vals[name]
		switch {
		case aok && bok:
			// fine
		case aok:
			if av.IsBool() {
				bv = c.BoolVar(name)
			} else {
				bv = c.Var(name, av.Width)
			}
		default:
			if bv.IsBool() {
				av = c.BoolVar(name)
			} else {
				av = c.Var(name, bv.Width)
			}
		}
		if av == bv {
			out.vals[name] = av
		} else if av.IsBool() {
			out.vals[name] = c.BoolIte(cond, av, bv)
		} else {
			out.vals[name] = c.Ite(cond, av, bv)
		}
	}
	return out
}

// orderAt reads the wire-order slot at a symbolic index: an ite chain over
// the order variables, yielding 0 (no header) past the wire — the same
// construction the encoder's SelectOrderAt uses.
func (ip *interp) orderAt(s *state, idx *smt.Term) *smt.Term {
	c := ip.ctx
	out := c.BV(0, 8)
	for i := len(ip.headers) - 1; i >= 0; i-- {
		out = c.Ite(c.Eq(idx, c.BV(uint64(i), 8)), ip.get(s, fmt.Sprintf("pkt.$order.%d", i), 8), out)
	}
	return out
}

// ---- expressions ----

func (ip *interp) expr(e p4.Expr, s *state, params map[string]*smt.Term, want int) (*smt.Term, error) {
	c := ip.ctx
	switch v := e.(type) {
	case *p4.ExternExpr:
		return v.X.(*smt.Term), nil
	case *p4.IntLit:
		w := v.Width
		if w == 0 {
			w = want
		}
		if w <= 0 {
			w = 32
		}
		return c.BV(v.Val, w), nil
	case *p4.FieldRef:
		return ip.get(s, v.Instance+"."+v.Field, ip.fieldWidth(v.Instance, v.Field)), nil
	case *p4.VarRef:
		if t, ok := params[v.Name]; ok {
			return t, nil
		}
		if cv, ok := ip.prog.Consts[v.Name]; ok {
			w := want
			if w <= 0 {
				w = 32
			}
			return c.BV(cv, w), nil
		}
		return nil, fmt.Errorf("validate: unbound identifier %q", v.Name)
	case *p4.IsValidExpr:
		return ip.get(s, v.Instance+".$valid", 0), nil
	case *p4.LookaheadExpr:
		return ip.lookahead(s, v.Width), nil
	case *p4.CastExpr:
		x, err := ip.expr(v.X, s, params, v.Width)
		if err != nil {
			return nil, err
		}
		return c.Resize(x, v.Width), nil
	case *p4.SliceExpr:
		x, err := ip.expr(v.X, s, params, 0)
		if err != nil {
			return nil, err
		}
		return c.Extract(x, v.Hi, v.Lo), nil
	case *p4.UnaryExpr:
		switch v.Op {
		case "!":
			x, err := ip.boolExpr(v.X, s, params)
			if err != nil {
				return nil, err
			}
			return c.Not(x), nil
		case "~":
			x, err := ip.expr(v.X, s, params, want)
			if err != nil {
				return nil, err
			}
			return c.BVNot(x), nil
		default:
			x, err := ip.expr(v.X, s, params, want)
			if err != nil {
				return nil, err
			}
			return c.BVNeg(x), nil
		}
	case *p4.BinaryExpr:
		switch v.Op {
		case "&&", "||":
			a, err := ip.boolExpr(v.X, s, params)
			if err != nil {
				return nil, err
			}
			b, err := ip.boolExpr(v.Y, s, params)
			if err != nil {
				return nil, err
			}
			if v.Op == "&&" {
				return c.And(a, b), nil
			}
			return c.Or(a, b), nil
		}
		var a, b *smt.Term
		var err error
		if _, lit := v.X.(*p4.IntLit); lit {
			b, err = ip.expr(v.Y, s, params, 0)
			if err != nil {
				return nil, err
			}
			a, err = ip.expr(v.X, s, params, b.Width)
		} else {
			a, err = ip.expr(v.X, s, params, want)
			if err != nil {
				return nil, err
			}
			wantY := a.Width
			if v.Op == "<<" || v.Op == ">>" {
				wantY = a.Width
			}
			b, err = ip.expr(v.Y, s, params, wantY)
		}
		if err != nil {
			return nil, err
		}
		if v.Op == "<<" || v.Op == ">>" {
			b = c.Resize(b, a.Width)
		}
		switch v.Op {
		case "+":
			return c.BVAdd(a, b), nil
		case "-":
			return c.BVSub(a, b), nil
		case "&":
			return c.BVAnd(a, b), nil
		case "|":
			return c.BVOr(a, b), nil
		case "^":
			return c.BVXor(a, b), nil
		case "<<":
			return c.BVShl(a, b), nil
		case ">>":
			return c.BVLshr(a, b), nil
		case "==":
			return c.Eq(a, b), nil
		case "!=":
			return c.Neq(a, b), nil
		case "<":
			return c.Ult(a, b), nil
		case ">":
			return c.Ugt(a, b), nil
		case "<=":
			return c.Ule(a, b), nil
		case ">=":
			return c.Uge(a, b), nil
		}
		return nil, fmt.Errorf("validate: unknown operator %q", v.Op)
	}
	return nil, fmt.Errorf("validate: unsupported expression %T", e)
}

func (ip *interp) boolExpr(e p4.Expr, s *state, params map[string]*smt.Term) (*smt.Term, error) {
	t, err := ip.expr(e, s, params, -1)
	if err != nil {
		return nil, err
	}
	if !t.IsBool() {
		t = ip.ctx.Neq(t, ip.ctx.BV(0, t.Width))
	}
	return t, nil
}

// lookahead reads the leading bits of the next unparsed header. The order
// slot is read at the symbolic extraction index; past the wire the slot
// reads 0 and no header matches, leaving zero padding.
func (ip *interp) lookahead(s *state, width int) *smt.Term {
	c := ip.ctx
	slot := ip.orderAt(s, ip.get(s, "pkt.$extidx", 8))
	out := c.BV(0, width)
	for _, h := range ip.headers {
		lead := ip.leadingPktBits(h, width)
		if lead == nil {
			continue
		}
		out = c.Ite(c.Eq(slot, c.BV(ip.headerIDs[h], 8)), lead, out)
	}
	return out
}

func (ip *interp) leadingPktBits(inst string, width int) *smt.Term {
	c := ip.ctx
	ht := ip.prog.InstanceType(inst)
	if ht.Width() < width {
		return nil
	}
	var acc *smt.Term
	for _, f := range ht.Fields {
		fv := c.Var("pkt."+inst+"."+f.Name, f.Width)
		if acc == nil {
			acc = fv
		} else {
			acc = c.Concat(acc, fv)
		}
		if acc.Width >= width {
			break
		}
	}
	return c.Extract(acc, acc.Width-1, acc.Width-width)
}

// ---- parser ----

func (ip *interp) runParser(name string, s *state) (*state, error) {
	pr, ok := ip.prog.Parsers[name]
	if !ok {
		return nil, fmt.Errorf("validate: unknown parser %q", name)
	}
	s.vals["$accept."+name] = ip.ctx.False()
	s.vals["$reject."+name] = ip.ctx.False()
	return ip.runParserState(pr, pr.Start, s, map[string]int{})
}

func (ip *interp) runParserState(pr *p4.Parser, stName string, s *state, visits map[string]int) (*state, error) {
	c := ip.ctx
	switch stName {
	case "accept":
		s.vals["$accept."+pr.Name] = c.True()
		return s, nil
	case "reject":
		s.vals["$reject."+pr.Name] = c.True()
		return s, nil
	}
	if visits[stName] >= ip.loopBound {
		s.wf = c.False() // bounded: deeper recursions are infeasible
		return s, nil
	}
	visits[stName]++
	defer func() { visits[stName]-- }()

	st := pr.States[stName]
	for _, raw := range st.Stmts {
		if err := ip.parserStmt(raw, s); err != nil {
			return nil, err
		}
	}
	tr := st.Trans
	if tr.Kind == p4.TransDirect {
		return ip.runParserState(pr, tr.Target, s, visits)
	}
	scrut, err := ip.expr(tr.Expr, s, nil, 0)
	if err != nil {
		return nil, err
	}
	// Build successor states last-to-first, merging with the case
	// conditions; an unmatched select rejects.
	rejected := s.clone()
	rejected.vals["$reject."+pr.Name] = c.True()
	result := rejected
	matchedAny := false
	for i := len(tr.Cases) - 1; i >= 0; i-- {
		cs := tr.Cases[i]
		branch, err := ip.runParserState(pr, cs.Target, s.clone(), visits)
		if err != nil {
			return nil, err
		}
		if cs.IsDefault {
			result = branch
			matchedAny = true
			continue
		}
		var match *smt.Term
		if cs.HasMask {
			mask := c.BV(cs.Mask, scrut.Width)
			match = c.Eq(c.BVAnd(scrut, mask), c.BVAnd(c.BV(cs.Val, scrut.Width), mask))
		} else {
			match = c.Eq(scrut, c.BV(cs.Val, scrut.Width))
		}
		// Earlier cases take precedence, so the fold from the back uses
		// plain ite nesting.
		result = ip.merge(match, branch, result)
	}
	_ = matchedAny
	return result, nil
}

func (ip *interp) parserStmt(raw p4.Stmt, s *state) error {
	c := ip.ctx
	switch st := raw.(type) {
	case *p4.ExtractStmt:
		ht := ip.prog.InstanceType(st.Header)
		for _, f := range ht.Fields {
			s.vals[st.Header+"."+f.Name] = c.Var("pkt."+st.Header+"."+f.Name, f.Width)
		}
		// Wire-order consistency at the symbolic extraction index; past
		// the wire the slot reads 0, which matches no header id.
		idx := ip.get(s, "pkt.$extidx", 8)
		s.wf = c.And(s.wf, c.Eq(ip.orderAt(s, idx), c.BV(ip.headerIDs[st.Header], 8)))
		s.vals[st.Header+".$valid"] = c.True()
		s.vals["pkt.$extidx"] = c.BVAdd(idx, c.BV(1, 8))
	case *p4.AssignStmt:
		return ip.assign(st, s, nil)
	case *p4.SetValidStmt:
		s.vals[st.Header+".$valid"] = c.Bool(st.Valid)
	case *p4.IfStmt:
		cond, err := ip.boolExpr(st.Cond, s, nil)
		if err != nil {
			return err
		}
		a := s.clone()
		b := s.clone()
		for _, t := range st.Then {
			if err := ip.parserStmt(t, a); err != nil {
				return err
			}
		}
		for _, t := range st.Else {
			if err := ip.parserStmt(t, b); err != nil {
				return err
			}
		}
		*s = *ip.merge(cond, a, b)
	default:
		return fmt.Errorf("validate: unsupported parser statement %T", raw)
	}
	return nil
}

func (ip *interp) assign(st *p4.AssignStmt, s *state, params map[string]*smt.Term) error {
	c := ip.ctx
	switch lhs := st.LHS.(type) {
	case *p4.FieldRef:
		w := ip.fieldWidth(lhs.Instance, lhs.Field)
		rhs, err := ip.expr(st.RHS, s, params, w)
		if err != nil {
			return err
		}
		s.vals[lhs.Instance+"."+lhs.Field] = c.Resize(rhs, w)
		return nil
	case *p4.SliceExpr:
		fr, ok := lhs.X.(*p4.FieldRef)
		if !ok {
			return fmt.Errorf("validate: slice assignment base must be a field")
		}
		w := ip.fieldWidth(fr.Instance, fr.Field)
		cur := ip.get(s, fr.Instance+"."+fr.Field, w)
		rhs, err := ip.expr(st.RHS, s, params, lhs.Hi-lhs.Lo+1)
		if err != nil {
			return err
		}
		nv := c.Resize(rhs, lhs.Hi-lhs.Lo+1)
		var parts *smt.Term
		if lhs.Hi < w-1 {
			parts = c.Extract(cur, w-1, lhs.Hi+1)
		}
		if parts == nil {
			parts = nv
		} else {
			parts = c.Concat(parts, nv)
		}
		if lhs.Lo > 0 {
			parts = c.Concat(parts, c.Extract(cur, lhs.Lo-1, 0))
		}
		s.vals[fr.Instance+"."+fr.Field] = parts
		return nil
	}
	return fmt.Errorf("validate: unsupported lvalue %T", st.LHS)
}

// ---- controls ----

func (ip *interp) runControl(name string, s *state) (*state, error) {
	ctl, ok := ip.prog.Controls[name]
	if !ok {
		return nil, fmt.Errorf("validate: unknown control %q", name)
	}
	for _, raw := range ctl.Apply {
		var err error
		s, err = ip.applyStmt(ctl, raw, s, nil)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (ip *interp) applyStmt(ctl *p4.Control, raw p4.Stmt, s *state, params map[string]*smt.Term) (*state, error) {
	c := ip.ctx
	switch st := raw.(type) {
	case *p4.ApplyStmt:
		return ip.applyTable(ctl, ctl.Tables[st.Table], s)
	case *p4.IfApplyStmt:
		s, err := ip.applyTable(ctl, ctl.Tables[st.Table], s)
		if err != nil {
			return nil, err
		}
		hit := ip.get(s, "$hit."+ctl.Name+"."+st.Table, 0)
		a := s.clone()
		b := s.clone()
		for _, t := range st.OnHit {
			a, err = ip.applyStmt(ctl, t, a, params)
			if err != nil {
				return nil, err
			}
		}
		for _, t := range st.OnMis {
			b, err = ip.applyStmt(ctl, t, b, params)
			if err != nil {
				return nil, err
			}
		}
		return ip.merge(hit, a, b), nil
	case *p4.SwitchApplyStmt:
		s, err := ip.applyTable(ctl, ctl.Tables[st.Table], s)
		if err != nil {
			return nil, err
		}
		actionVal := ip.get(s, "$action."+ctl.Name+"."+st.Table, 16)
		def := s.clone()
		for _, t := range st.Default {
			def, err = ip.applyStmt(ctl, t, def, params)
			if err != nil {
				return nil, err
			}
		}
		result := def
		tbl := ctl.Tables[st.Table]
		laidOf := func(a string) uint64 {
			for i, an := range tbl.Actions {
				if an == a {
					return uint64(i + 1)
				}
			}
			return 0
		}
		for i := len(st.Cases) - 1; i >= 0; i-- {
			cs := st.Cases[i]
			branch := s.clone()
			for _, t := range cs.Body {
				branch, err = ip.applyStmt(ctl, t, branch, params)
				if err != nil {
					return nil, err
				}
			}
			cond := c.Eq(actionVal, c.BV(laidOf(cs.Action), 16))
			if tbl.DefaultAction == cs.Action {
				cond = c.Or(cond, c.Eq(actionVal, c.BV(0, 16)))
			}
			result = ip.merge(cond, branch, result)
		}
		return result, nil
	case *p4.IfStmt:
		cond, err := ip.boolExpr(st.Cond, s, params)
		if err != nil {
			return nil, err
		}
		a := s.clone()
		b := s.clone()
		for _, t := range st.Then {
			a, err = ip.applyStmt(ctl, t, a, params)
			if err != nil {
				return nil, err
			}
		}
		for _, t := range st.Else {
			b, err = ip.applyStmt(ctl, t, b, params)
			if err != nil {
				return nil, err
			}
		}
		return ip.merge(cond, a, b), nil
	case *p4.CallActionStmt:
		act := ctl.Actions[st.Action]
		args := make([]*smt.Term, len(st.Args))
		for i, a := range st.Args {
			t, err := ip.expr(a, s, params, act.Params[i].Width)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return ip.runAction(ctl, act, args, s)
	case *p4.AssignStmt:
		return s, ip.assign(st, s, params)
	case *p4.SetValidStmt:
		s.vals[st.Header+".$valid"] = c.Bool(st.Valid)
		return s, nil
	case *p4.RegReadStmt:
		reg := ip.prog.Registers[st.Reg]
		val := ip.get(s, "reg."+st.Reg, reg.Width)
		return s, ip.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: val}}, s, params)
	case *p4.RegWriteStmt:
		reg := ip.prog.Registers[st.Reg]
		v, err := ip.expr(st.Val, s, params, reg.Width)
		if err != nil {
			return nil, err
		}
		s.vals["reg."+st.Reg] = v
		return s, nil
	case *p4.CountStmt:
		reg := ip.prog.Registers[st.Counter]
		cur := ip.get(s, "reg."+st.Counter, reg.Width)
		s.vals["reg."+st.Counter] = c.BVAdd(cur, c.BV(1, reg.Width))
		return s, nil
	case *p4.ExecuteMeterStmt:
		ip.hashSeq++
		w := ip.lvalueWidth(st.Dst)
		h := c.Var(fmt.Sprintf("$hash.%d", ip.hashSeq), w)
		return s, ip.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: h}}, s, params)
	case *p4.HashStmt:
		ip.hashSeq++
		w := ip.lvalueWidth(st.Dst)
		h := c.Var(fmt.Sprintf("$hash.%d", ip.hashSeq), w)
		return s, ip.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: h}}, s, params)
	case *p4.PrimitiveStmt:
		field := map[string]string{
			"drop": "drop", "to_cpu": "to_cpu", "recirculate": "recirc",
			"resubmit": "resubmit", "mirror": "mirror",
		}[st.Name]
		s.vals["std_meta."+field] = c.BV(1, 1)
		return s, nil
	}
	return nil, fmt.Errorf("validate: unsupported control statement %T", raw)
}

func (ip *interp) lvalueWidth(e p4.Expr) int {
	switch x := e.(type) {
	case *p4.FieldRef:
		return ip.fieldWidth(x.Instance, x.Field)
	case *p4.SliceExpr:
		return x.Hi - x.Lo + 1
	}
	return 32
}

func (ip *interp) runAction(ctl *p4.Control, act *p4.Action, args []*smt.Term, s *state) (*state, error) {
	params := map[string]*smt.Term{}
	for i, pm := range act.Params {
		params[pm.Name] = args[i]
	}
	var err error
	for _, raw := range act.Body {
		s, err = ip.applyStmt(ctl, raw, s, params)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// applyTable interprets a table entry-by-entry — no ABVs, no lookup tree:
// the straightforward reference semantics the encoder is checked against.
func (ip *interp) applyTable(ctl *p4.Control, tbl *p4.Table, s *state) (*state, error) {
	c := ip.ctx
	s.vals["$applied."+ctl.Name+"."+tbl.Name] = c.True()
	keys := make([]*smt.Term, len(tbl.Keys))
	for i, k := range tbl.Keys {
		t, err := ip.expr(k.Expr, s, nil, 0)
		if err != nil {
			return nil, err
		}
		keys[i] = t
	}
	ents := ip.entriesFor(ctl, tbl)
	laidOf := func(a string) uint64 {
		for i, an := range tbl.Actions {
			if an == a {
				return uint64(i + 1)
			}
		}
		return 0
	}
	if ents == nil {
		// Unknown entries: the same named free choices as the encoder.
		hit := c.BoolVar("$tbl." + ctl.Name + "." + tbl.Name + ".hit")
		laid := c.Var("$tbl."+ctl.Name+"."+tbl.Name+".laid", 16)
		var installable []string
		for _, an := range tbl.Actions {
			if !tbl.DefaultOnly[an] && ctl.Actions[an] != nil {
				installable = append(installable, an)
			}
		}
		// Miss state.
		miss := s.clone()
		miss.vals["$hit."+ctl.Name+"."+tbl.Name] = c.False()
		miss.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(0, 16)
		var err error
		if act := ctl.Actions[tbl.DefaultAction]; act != nil {
			args := make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				if j < len(tbl.DefaultArgs) {
					if lit, ok := tbl.DefaultArgs[j].(*p4.IntLit); ok {
						args[j] = c.BV(lit.Val, pm.Width)
						continue
					}
				}
				args[j] = c.Var(fmt.Sprintf("$tbl.%s.%s.defarg.%d", ctl.Name, tbl.Name, j), pm.Width)
			}
			miss, err = ip.runAction(ctl, act, args, miss)
			if err != nil {
				return nil, err
			}
		}
		if len(installable) == 0 {
			return miss, nil
		}
		inRange := c.False()
		for _, an := range installable {
			inRange = c.Or(inRange, c.Eq(laid, c.BV(laidOf(an), 16)))
		}
		clamped := c.Ite(inRange, laid, c.BV(laidOf(installable[0]), 16))
		// Hit state: dispatch backwards over installable actions.
		base := s.clone()
		base.vals["$hit."+ctl.Name+"."+tbl.Name] = c.True()
		base.vals["$action."+ctl.Name+"."+tbl.Name] = clamped
		hitState := base.clone()
		for i := len(installable) - 1; i >= 0; i-- {
			an := installable[i]
			act := ctl.Actions[an]
			args := make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				args[j] = c.Var(fmt.Sprintf("$tbl.%s.%s.arg.%s.%d", ctl.Name, tbl.Name, an, j), pm.Width)
			}
			branch, err := ip.runAction(ctl, act, args, base.clone())
			if err != nil {
				return nil, err
			}
			if i == len(installable)-1 {
				hitState = branch
			} else {
				hitState = ip.merge(c.Eq(clamped, c.BV(laidOf(an), 16)), branch, hitState)
			}
		}
		return ip.merge(hit, hitState, miss), nil
	}

	// Known entries: fold from the default upward so earlier entries win.
	result := s.clone()
	result.vals["$hit."+ctl.Name+"."+tbl.Name] = c.False()
	result.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(0, 16)
	if act := ctl.Actions[tbl.DefaultAction]; act != nil {
		args := make([]*smt.Term, len(act.Params))
		for j, pm := range act.Params {
			var v uint64
			if j < len(tbl.DefaultArgs) {
				if lit, ok := tbl.DefaultArgs[j].(*p4.IntLit); ok {
					v = lit.Val
				}
			}
			args[j] = c.BV(v, pm.Width)
		}
		var err error
		result, err = ip.runAction(ctl, act, args, result)
		if err != nil {
			return nil, err
		}
	}
	for i := len(ents) - 1; i >= 0; i-- {
		ent := ents[i]
		act := ctl.Actions[ent.Action]
		match := ip.matchTerm(keys, ent)
		branch := s.clone()
		branch.vals["$hit."+ctl.Name+"."+tbl.Name] = c.True()
		branch.vals["$action."+ctl.Name+"."+tbl.Name] = c.BV(laidOf(ent.Action), 16)
		if act != nil {
			args := make([]*smt.Term, len(act.Params))
			for j, pm := range act.Params {
				var v uint64
				if j < len(ent.Args) {
					v = ent.Args[j]
				}
				args[j] = c.BV(v, pm.Width)
			}
			var err error
			branch, err = ip.runAction(ctl, act, args, branch)
			if err != nil {
				return nil, err
			}
		}
		result = ip.merge(match, branch, result)
	}
	return result, nil
}

func (ip *interp) entriesFor(ctl *p4.Control, tbl *p4.Table) []*tables.Entry {
	fq := ctl.Name + "." + tbl.Name
	if ip.snap != nil && ip.snap.Has(fq) {
		return ip.snap.Entries(fq)
	}
	if len(tbl.ConstEntries) > 0 {
		var out []*tables.Entry
		for _, ce := range tbl.ConstEntries {
			ent := &tables.Entry{Action: ce.Action, Args: append([]uint64(nil), ce.Args...), Priority: ce.Priority}
			for i := range ce.KeyVals {
				if ce.KeyMasks[i] == 0 {
					ent.Keys = append(ent.Keys, tables.Wildcard())
				} else if tbl.Keys[i].Kind == p4.MatchTernary {
					ent.Keys = append(ent.Keys, tables.Ternary(ce.KeyVals[i], ce.KeyMasks[i]))
				} else {
					ent.Keys = append(ent.Keys, tables.Exact(ce.KeyVals[i]))
				}
			}
			out = append(out, ent)
		}
		return out
	}
	return nil
}

func (ip *interp) matchTerm(keys []*smt.Term, ent *tables.Entry) *smt.Term {
	c := ip.ctx
	cond := c.True()
	for i, km := range ent.Keys {
		if i >= len(keys) {
			break
		}
		k := keys[i]
		switch {
		case km.IsRange:
			cond = c.And(cond, c.Ule(c.BV(km.Value, k.Width), k), c.Ule(k, c.BV(km.High, k.Width)))
		case km.PrefixLen >= 0:
			var mask uint64
			for b := 0; b < km.PrefixLen && b < k.Width; b++ {
				mask |= 1 << uint(k.Width-1-b)
			}
			mv := c.BV(mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		case km.Mask == ^uint64(0):
			cond = c.And(cond, c.Eq(k, c.BV(km.Value, k.Width)))
		case km.Mask == 0:
		default:
			mv := c.BV(km.Mask, k.Width)
			cond = c.And(cond, c.Eq(c.BVAnd(k, mv), c.BVAnd(c.BV(km.Value, k.Width), mv)))
		}
	}
	return cond
}

// ---- deparser ----

func (ip *interp) runDeparser(name string, s *state) (*state, error) {
	dp, ok := ip.prog.Deparsers[name]
	if !ok {
		return nil, fmt.Errorf("validate: unknown deparser %q", name)
	}
	c := ip.ctx
	n := len(ip.headers)
	for i := 0; i < n; i++ {
		s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.BV(0, 8)
	}
	s.vals["pkt.$outidx"] = c.BV(0, 8)
	var checksums []*p4.UpdateChecksumStmt
	for _, raw := range dp.Stmts {
		switch st := raw.(type) {
		case *p4.EmitStmt:
			valid := ip.get(s, st.Header+".$valid", 0)
			outIdx := ip.get(s, "pkt.$outidx", 8)
			id := c.BV(ip.headerIDs[st.Header], 8)
			for i := 0; i < n; i++ {
				slot := ip.get(s, fmt.Sprintf("pkt.$out.%d", i), 8)
				cond := c.And(valid, c.Eq(outIdx, c.BV(uint64(i), 8)))
				s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.Ite(cond, id, slot)
			}
			s.vals["pkt.$outidx"] = c.Ite(valid, c.BVAdd(outIdx, c.BV(1, 8)), outIdx)
		case *p4.UpdateChecksumStmt:
			checksums = append(checksums, st)
		}
	}
	// Unparsed tail.
	outIdx := ip.get(s, "pkt.$outidx", 8)
	extIdx := ip.get(s, "pkt.$extidx", 8)
	for k := 0; k < n; k++ {
		val := ip.orderAt(s, c.BVAdd(extIdx, c.BV(uint64(k), 8)))
		dst := c.BVAdd(outIdx, c.BV(uint64(k), 8))
		for i := 0; i < n; i++ {
			slot := ip.get(s, fmt.Sprintf("pkt.$out.%d", i), 8)
			cond := c.And(c.Eq(dst, c.BV(uint64(i), 8)), c.Neq(val, c.BV(0, 8)))
			s.vals[fmt.Sprintf("pkt.$out.%d", i)] = c.Ite(cond, val, slot)
		}
	}
	for _, st := range checksums {
		w := ip.lvalueWidth(st.Dst)
		sum := c.BV(0, w)
		for _, in := range st.Inputs {
			t, err := ip.expr(in, s, nil, 0)
			if err != nil {
				return nil, err
			}
			sum = c.BVAdd(sum, c.Resize(t, w))
		}
		if err := ip.assign(&p4.AssignStmt{LHS: st.Dst, RHS: &p4.ExternExpr{X: sum}}, s, nil); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// runComponent dispatches by component kind, following pipelines.
func (ip *interp) runComponent(name string, s *state) (*state, error) {
	if _, ok := ip.prog.Parsers[name]; ok {
		return ip.runParser(name, s)
	}
	if _, ok := ip.prog.Controls[name]; ok {
		return ip.runControl(name, s)
	}
	if _, ok := ip.prog.Deparsers[name]; ok {
		return ip.runDeparser(name, s)
	}
	if pl, ok := ip.prog.Pipelines[name]; ok {
		var err error
		if pl.Parser != "" {
			if s, err = ip.runParser(pl.Parser, s); err != nil {
				return nil, err
			}
		}
		if pl.Control != "" {
			if s, err = ip.runControl(pl.Control, s); err != nil {
				return nil, err
			}
		}
		if pl.Deparser != "" {
			if s, err = ip.runDeparser(pl.Deparser, s); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("validate: unknown component %q", name)
}
