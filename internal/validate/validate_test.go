package validate

import (
	"strings"
	"testing"

	"aquila/internal/encode"
	"aquila/internal/p4"
	"aquila/internal/tables"
)

const prog1 = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> dst_ip; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
struct meta_t { bit<8> scratch; }
ethernet_t eth;
ipv4_t ipv4;
tcp_t tcp;
meta_t md;

parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			default: accept;
		}
	}
	state parse_tcp { extract(tcp); transition accept; }
}

control Ing {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action dec() { ipv4.ttl = ipv4.ttl - 1; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { send; dec; @defaultonly a_drop; }
		default_action = a_drop;
	}
	apply {
		if (ipv4.isValid()) {
			fwd.apply();
			md.scratch = ipv4.ttl;
		}
	}
}

deparser D { emit(eth); emit(ipv4); emit(tcp); }
pipeline pl { parser = P; control = Ing; deparser = D; }
`

func parse(t *testing.T, src string) *p4.Program {
	t.Helper()
	prog, err := p4.ParseAndCheck("v", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func snapshot() *tables.Snapshot {
	snap := tables.NewSnapshot()
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000001)}, Action: "send", Args: []uint64{3}, Priority: -1})
	snap.Add("Ing.fwd", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(0x0A000002)}, Action: "dec", Priority: -1})
	return snap
}

func TestCorrectEncoderIsEquivalent(t *testing.T) {
	prog := parse(t, prog1)
	for _, comps := range [][]string{
		{"P"},
		{"Ing"},
		{"D"},
		{"pl"},
	} {
		res, err := Validate(prog, snapshot(), comps, encode.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("components %v: expected equivalence:\n%s", comps, res)
		}
	}
}

func TestCorrectEncoderWildcardEntries(t *testing.T) {
	// Unknown entries: the free table choices are shared by name, so the
	// representations must still be equivalent.
	prog := parse(t, prog1)
	res, err := Validate(prog, nil, []string{"pl"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("expected equivalence under wildcard entries:\n%s", res)
	}
}

func TestTableModesAllValidate(t *testing.T) {
	prog := parse(t, prog1)
	for _, mode := range []encode.TableMode{encode.TableABVTree, encode.TableABVLinear, encode.TableNaive} {
		res, err := Validate(prog, snapshot(), []string{"Ing"}, encode.Options{Table: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("table mode %v: expected equivalence:\n%s", mode, res)
		}
	}
}

const emptyStateProg = `
header h_t { bit<8> a; }
header g_t { bit<8> b; }
h_t h;
g_t g;
parser P {
	state start {
		extract(h);
		transition select(h.a) {
			1: hop;
			default: reject;
		}
	}
	state hop { transition parse_g; } // empty state: no statements
	state parse_g { extract(g); transition accept; }
}
`

// TestEmptyStateBugDetected reproduces the §7.2 story: an encoder that
// treats empty parser states as accept is caught by the self validator.
func TestEmptyStateBugDetected(t *testing.T) {
	prog := parse(t, emptyStateProg)
	// Correct encoder: equivalent.
	res, err := Validate(prog, nil, []string{"P"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("correct encoder must validate:\n%s", res)
	}
	// Buggy encoder: must be detected.
	res, err = Validate(prog, nil, []string{"P"}, encode.Options{InjectEncoderBug: "empty-state-accept"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("empty-state-accept bug must be detected")
	}
	// The g header's validity (or the accept ghost) must be among the
	// mismatches: the buggy encoding accepts without extracting g.
	found := false
	for _, m := range res.Mismatches {
		if m.Var == "g.$valid" || m.Var == "$accept.P" || m.Var == "$reject.P" || strings.HasPrefix(m.Var, "g.") {
			found = true
		}
	}
	if !found {
		t.Fatalf("mismatches %v should involve the skipped state's effects", res.Mismatches)
	}
}

const defaultOnlyProg = `
header h_t { bit<8> k; bit<8> v; }
h_t h;
parser P { state start { extract(h); transition accept; } }
control C {
	action norm() { h.v = 1; }
	action special() { h.v = 77; }
	table t {
		key = { h.k : exact; }
		actions = { norm; @defaultonly special; }
		default_action = special;
	}
	apply { t.apply(); }
}
`

// TestDefaultOnlyBugDetected reproduces the §7.2 "@defaultonly ignored"
// Aquila bug: under unknown entries, the buggy encoder lets the special
// action be installed, diverging from the reference semantics.
func TestDefaultOnlyBugDetected(t *testing.T) {
	prog := parse(t, defaultOnlyProg)
	res, err := Validate(prog, nil, []string{"P", "C"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("correct encoder must validate:\n%s", res)
	}
	res, err = Validate(prog, nil, []string{"P", "C"}, encode.Options{InjectEncoderBug: "ignore-defaultonly"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("ignore-defaultonly bug must be detected")
	}
}

const loopProg = `
header base_t { bit<8> n; }
header opt_t { bit<8> kind; }
base_t base;
opt_t opt;
parser P {
	state start { extract(base); transition next; }
	state next {
		transition select(lookahead<bit<8>>()) {
			1: eat;
			default: accept;
		}
	}
	state eat { extract(opt); transition next; }
}
`

func TestLoopParserValidates(t *testing.T) {
	prog := parse(t, loopProg)
	res, err := Validate(prog, nil, []string{"P"}, encode.Options{LoopBound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("loop parser must validate:\n%s", res)
	}
}

func TestChecksumAndHashValidate(t *testing.T) {
	src := `
header h_t { bit<8> a; bit<8> b; bit<8> csum; }
h_t h;
register<bit<8>>(16) r;
parser P { state start { extract(h); transition accept; } }
control C {
	apply {
		hash(h.a, h.b);
		r.write(0, h.a);
		r.read(h.b, 3);
	}
}
deparser D { emit(h); update_checksum(h.csum, h.a, h.b); }
`
	prog := parse(t, src)
	res, err := Validate(prog, nil, []string{"P", "C", "D"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("hash/register/checksum must validate:\n%s", res)
	}
}

func TestResultString(t *testing.T) {
	prog := parse(t, prog1)
	res, err := Validate(prog, snapshot(), []string{"P"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "self-validation passed") {
		t.Fatalf("unexpected report: %s", res)
	}
}

// TestValidateSimplifyAgrees pins ValidateSimplify to the plain
// validator's verdicts: equivalence on a correct encoder, and detection
// of an injected encoder bug — the simplifier must not paper over a
// genuine refinement mismatch.
func TestValidateSimplifyAgrees(t *testing.T) {
	prog := parse(t, prog1)
	res, err := ValidateSimplify(prog, snapshot(), []string{"pl"}, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("simplified queries must stay equivalent:\n%s", res)
	}
	bugProg := parse(t, emptyStateProg)
	res, err = ValidateSimplify(bugProg, nil, []string{"P"}, encode.Options{InjectEncoderBug: "empty-state-accept"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent {
		t.Fatal("empty-state-accept bug must survive simplification")
	}
}
