package validate

import (
	"testing"

	"aquila/internal/encode"
	"aquila/internal/genprog"
	"aquila/internal/progs"
)

// TestBenchmarkSuiteValidates runs the self validator over every
// hand-written Table 3 benchmark — the §6 workflow Aquila's own
// development used ("the majority of bugs in Aquila were detected in the
// early stage of development").
func TestBenchmarkSuiteValidates(t *testing.T) {
	for _, bm := range progs.HandWrittenSuite() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			prog, err := bm.Parse()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Validate(prog, nil, bm.Calls, encode.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equivalent {
				t.Fatalf("encoder/interpreter divergence:\n%s", res)
			}
		})
	}
}

// TestGeneratedProgramValidates runs the validator on a generated
// production-shaped program (small scale to keep the test fast).
func TestGeneratedProgramValidates(t *testing.T) {
	cfg := genprog.SwitchT("small")
	bm := genprog.Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Validate(prog, genprog.TTLSnapshot(cfg, false), bm.Calls, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("generated program divergence:\n%s", res)
	}
}
