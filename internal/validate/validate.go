// Package validate implements Aquila's self validation (§6 of the paper):
// a translation-validation / refinement proof between the GCL encoding
// A(P) produced by package encode and an alternative representation X(P)
// produced by an independent big-step symbolic evaluator (the Gauntlet
// substitute described in DESIGN.md).
//
// For a program P and component list, both representations are driven from
// the same symbolic initial state; the refinement relation R is name
// identity on state variables. The validator checks, per observable
// variable v, that no input reaching the end of both representations can
// make A's value of v differ from X's — and that both sides constrain the
// input identically (the Assume part of Figure 10).
package validate

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/smt"
	"aquila/internal/tables"
)

// Mismatch is one refinement violation: a variable whose final value
// differs between the two representations for some input.
type Mismatch struct {
	Var string
	Cex string
}

// Result is the outcome of self validation.
type Result struct {
	Equivalent bool
	Mismatches []Mismatch
	// Checked is the number of observable variables compared.
	Checked int
	Time    time.Duration
}

// String renders the result.
func (r *Result) String() string {
	var b strings.Builder
	if r.Equivalent {
		fmt.Fprintf(&b, "self-validation passed: %d observables equivalent\n", r.Checked)
	} else {
		fmt.Fprintf(&b, "SELF-VALIDATION FAILED: %d mismatches over %d observables\n",
			len(r.Mismatches), r.Checked)
		for _, m := range r.Mismatches {
			fmt.Fprintf(&b, "  %s differs; counterexample:\n", m.Var)
			for _, line := range strings.Split(m.Cex, "\n") {
				if line != "" {
					fmt.Fprintf(&b, "    %s\n", line)
				}
			}
		}
	}
	fmt.Fprintf(&b, "time: %v\n", r.Time.Round(time.Millisecond))
	return b.String()
}

// Validate checks the encoder against the independent interpreter for the
// named components (parsers, controls, deparsers or pipelines, run in
// order). opts configures the encoder under test — including, for the §7.2
// regression stories, an injected encoder bug.
func Validate(prog *p4.Program, snap *tables.Snapshot, components []string, opts encode.Options) (*Result, error) {
	return run(prog, snap, components, opts, Config{})
}

// ValidateSimplify runs the same refinement proof but passes every solver
// query through the algebraic simplification pass first — exercising, in
// the §6 pipeline itself, that simplification preserves the refinement
// verdict.
func ValidateSimplify(prog *p4.Program, snap *tables.Snapshot, components []string, opts encode.Options) (*Result, error) {
	return run(prog, snap, components, opts, Config{Simplify: true})
}

// Config selects the optional solver-side passes of a validation run.
type Config struct {
	// Simplify routes every refinement query through the algebraic
	// simplification pass.
	Simplify bool
	// Preprocess enables SatELite-style CNF preprocessing in the solver —
	// exercising, like Simplify, that the pass preserves refinement
	// verdicts inside the §6 pipeline itself.
	Preprocess bool
	// Obs attaches observability sinks for this run; nil falls back to the
	// process default. The fuzzing engine passes a per-iteration registry
	// here to read coverage signatures without touching global state.
	Obs *obs.Obs
}

func (c Config) observer() *obs.Obs {
	if c.Obs != nil {
		return c.Obs
	}
	return obs.Default()
}

// ValidateWith runs the refinement proof with the given pass configuration.
func ValidateWith(prog *p4.Program, snap *tables.Snapshot, components []string, opts encode.Options, cfg Config) (*Result, error) {
	return run(prog, snap, components, opts, cfg)
}

func run(prog *p4.Program, snap *tables.Snapshot, components []string, opts encode.Options, cfg Config) (*Result, error) {
	start := time.Now()
	o := cfg.observer()
	ctx := smt.NewCtx()

	// A(P): Aquila's GCL encoding.
	endA := o.Phase(0, "validate:encode-A")
	env := encode.NewEnv(ctx, prog, snap, opts)
	stmts := []gcl.Stmt{env.InitStmts()}
	for _, comp := range components {
		s, err := env.EncodeComponent(comp)
		if err != nil {
			endA()
			return nil, err
		}
		stmts = append(stmts, s)
	}
	enc := gcl.NewEncoder(ctx)
	aRes := enc.Encode(gcl.NewSeq(stmts...), nil)
	endA()

	// X(P): the independent big-step evaluation.
	endX := o.Phase(0, "validate:interp-X")
	ip := newInterp(ctx, prog, snap, opts.LoopBound)
	if ip.loopBound == 0 {
		ip.loopBound = 4
	}
	xState := ip.initialState()
	for _, comp := range components {
		var err error
		xState, err = ip.runComponent(comp, xState)
		if err != nil {
			endX()
			return nil, err
		}
	}
	endX()

	endCheck := o.Phase(0, "validate:check")
	defer endCheck()
	res := &Result{Time: 0}
	solver := smt.NewSolver(ctx)
	if cfg.Preprocess {
		solver.SetPreprocess(true)
	}
	query := func(cond *smt.Term) *smt.Term { return cond }
	if cfg.Simplify {
		simp := smt.NewSimplifier(ctx)
		query = simp.Simplify
	}

	// The Assume part: both representations must constrain inputs alike.
	// A path-condition divergence is reported against the pseudo-variable
	// "$path".
	pathA := aRes.Path
	pathX := xState.wf
	if st := solver.Check(query(ctx.Not(ctx.Iff(pathA, pathX)))); st == smt.Sat {
		m := solver.Model()
		solver.ModelCollect(m, ctx.Iff(pathA, pathX))
		res.Mismatches = append(res.Mismatches, Mismatch{Var: "$path", Cex: renderModel(ctx, pathA, pathX, m)})
	}
	res.Checked++

	// The Assert part: every observable variable agrees on inputs admitted
	// by both sides.
	for _, name := range observables(env, prog) {
		res.Checked++
		var aVal, xVal *smt.Term
		if v, ok := aRes.Store.Lookup(name); ok {
			aVal = v
		}
		xVal = xState.vals[name]
		if aVal == nil && xVal == nil {
			continue // untouched on both sides: trivially equal
		}
		// Fill in defaults (initial symbolic value).
		fill := func(have *smt.Term) *smt.Term {
			if have.IsBool() {
				return ctx.BoolVar(name)
			}
			return ctx.Var(name, have.Width)
		}
		if aVal == nil {
			aVal = fill(xVal)
		}
		if xVal == nil {
			xVal = fill(aVal)
		}
		var diff *smt.Term
		if aVal.IsBool() != xVal.IsBool() {
			res.Mismatches = append(res.Mismatches, Mismatch{Var: name, Cex: "sort mismatch"})
			continue
		}
		if aVal.IsBool() {
			diff = ctx.Not(ctx.Iff(aVal, xVal))
		} else if aVal.Width != xVal.Width {
			res.Mismatches = append(res.Mismatches, Mismatch{Var: name, Cex: "width mismatch"})
			continue
		} else {
			diff = ctx.Neq(aVal, xVal)
		}
		// Only inputs that survive both sides' assumptions matter.
		cond := ctx.And(pathA, pathX, diff)
		if solver.Check(query(cond)) == smt.Sat {
			m := solver.Model()
			solver.ModelCollect(m, cond)
			res.Mismatches = append(res.Mismatches, Mismatch{Var: name, Cex: renderModel(ctx, aVal, xVal, m)})
		}
	}
	res.Equivalent = len(res.Mismatches) == 0
	res.Time = time.Since(start)
	if o != nil && o.Metrics != nil {
		ss := solver.SolverStats()
		m := o.Metrics
		m.Counter(obs.CtrSATConflicts).Add(ss.Conflicts)
		m.Counter(obs.CtrSATDecisions).Add(ss.Decisions)
		m.Counter(obs.CtrSATPropagations).Add(ss.Propagations)
		m.Counter(obs.CtrSATElimVars).Add(ss.ElimVars)
		m.Counter(obs.CtrSATSubsumed).Add(ss.Subsumed)
		m.Counter(obs.CtrSATStrengthened).Add(ss.Strengthened)
		m.Counter(obs.CtrSMTTseitinClauses).Add(ss.TseitinClauses)
	}
	o.Event("validate_done", map[string]any{
		"equivalent": res.Equivalent, "checked": res.Checked,
		"mismatches": len(res.Mismatches),
	})
	return res, nil
}

// observables lists the state variables whose equivalence defines
// refinement: header fields and validity, standard metadata, registers,
// parser accept/reject, and the deparsed output order.
func observables(env *encode.Env, prog *p4.Program) []string {
	var out []string
	for _, inst := range prog.HeaderInstances() {
		ht := prog.InstanceType(inst.Name)
		for _, f := range ht.Fields {
			out = append(out, inst.Name+"."+f.Name)
		}
		out = append(out, inst.Name+".$valid")
	}
	for _, f := range p4.StdMetaFields {
		out = append(out, "std_meta."+f.Name)
	}
	for name := range prog.Registers {
		out = append(out, "reg."+name)
	}
	for name := range prog.Parsers {
		out = append(out, "$accept."+name, "$reject."+name)
	}
	for i := 0; i < env.MaxHeaders(); i++ {
		out = append(out, fmt.Sprintf("pkt.$out.%d", i))
	}
	sort.Strings(out)
	return out
}

func renderModel(ctx *smt.Ctx, a, b *smt.Term, m *smt.Model) string {
	seen := map[string]bool{}
	var lines []string
	for _, t := range append(smt.Vars(a), smt.Vars(b)...) {
		if seen[t.Name] || strings.Contains(t.Name, "!") {
			continue
		}
		seen[t.Name] = true
		if t.IsBool() {
			lines = append(lines, fmt.Sprintf("%s = %v", t.Name, m.Bool(t)))
		} else {
			lines = append(lines, fmt.Sprintf("%s = 0x%x", t.Name, m.BV(t)))
		}
	}
	sort.Strings(lines)
	if m != nil {
		lines = append(lines, fmt.Sprintf("A-side value = %v, X-side value = %v", renderVal(a, m), renderVal(b, m)))
	}
	return strings.Join(lines, "\n")
}

func renderVal(t *smt.Term, m *smt.Model) string {
	if t.IsBool() {
		return fmt.Sprintf("%v", m.Bool(t))
	}
	return fmt.Sprintf("0x%x", m.BV(t))
}
