package validate

import (
	"testing"

	"aquila/internal/encode"
	"aquila/internal/p4"
)

// TestSelectNoDefaultReject pins a bug the differential fuzzer found: a
// select with no default arm can reject, so after the select the two
// branches have extracted to different depths. The interpreter used to
// track the extraction index as a per-path concrete int, poisoned it to
// -1 at the merge, and then rejected every packet a later pipeline's
// parser touched — while the encoder's symbolic ExtIdxVar admitted them.
// The index is now symbolic on both sides.
func TestSelectNoDefaultReject(t *testing.T) {
	src := `
header a_t { bit<8> x; }
header b_t { bit<8> y; }
a_t a;
b_t b;
parser P0 {
	state start {
		extract(a);
		transition select(a.x) {
			1: parse_b;
		}
	}
	state parse_b { extract(b); transition accept; }
}
parser P1 {
	state start { extract(a); transition accept; }
}
control C0 { apply { } }
deparser D0 { emit(a); }
deparser D1 { }
pipeline pipe0 { parser = P0; control = C0; deparser = D0; }
pipeline pipe1 { parser = P1; control = C0; deparser = D1; }
`
	prog, err := p4.ParseAndCheck("selreject", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, comps := range [][]string{{"P0"}, {"pipe0"}, {"pipe0", "pipe1"}} {
		res, err := Validate(prog, nil, comps, encode.Options{})
		if err != nil {
			t.Fatalf("%v: %v", comps, err)
		}
		if !res.Equivalent {
			t.Fatalf("%v mismatch:\n%s", comps, res.String())
		}
	}
}
