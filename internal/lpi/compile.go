package lpi

import (
	"fmt"
	"strings"

	"aquila/internal/encode"
	"aquila/internal/gcl"
	"aquila/internal/smt"
)

// AssertionInfo identifies an assertion in verifier reports.
type AssertionInfo struct {
	Block string
	Index int
	Line  int
	Text  string
}

// Label is the assertion's stable identifier.
func (a *AssertionInfo) Label() string { return fmt.Sprintf("%s#%d", a.Block, a.Index) }

// Compiler lowers a parsed Spec onto an encoding environment, producing
// the whole-switch GCL the paper's Figure 7 pipeline verifies.
type Compiler struct {
	Env  *encode.Env
	Spec *Spec

	ghosts       map[string]*smt.Term
	initSnaps    map[string]*smt.Term
	pipelineRan  bool
	assertionSeq int
}

// NewCompiler returns a compiler for spec over env. The env must have been
// built with encode.Options.TrackModified covering spec.ModifiedPaths
// (see TrackModified).
func NewCompiler(spec *Spec, env *encode.Env) *Compiler {
	return &Compiler{
		Env:       env,
		Spec:      spec,
		ghosts:    map[string]*smt.Term{},
		initSnaps: map[string]*smt.Term{},
	}
}

// TrackModified builds the encode option set for a spec.
func TrackModified(spec *Spec) map[string]bool {
	m := map[string]bool{}
	for _, p := range spec.ModifiedPaths {
		m[p] = true
	}
	return m
}

// Compile produces the whole-switch GCL: initialization, the program
// block, and the assumption/assertion insertions it requests.
func (c *Compiler) Compile() (gcl.Stmt, error) {
	var out []gcl.Stmt
	out = append(out, c.Env.InitStmts())
	snaps, err := c.initialSnapshots()
	if err != nil {
		return nil, err
	}
	out = append(out, snaps...)
	body, err := c.compileProgStmts(c.Spec.Program)
	if err != nil {
		return nil, err
	}
	out = append(out, body)
	return gcl.NewSeq(out...), nil
}

// initialSnapshots emits $init ghosts for the values the spec refers to
// as they were when the packet entered the switch: @-references to
// metadata snapshot the metadata variable; @-references to header fields
// and keep() targets snapshot the packet image (which inter-pipeline
// packet passing overwrites at every traffic-manager hop, §4.3 — without
// the snapshot, "@" would drift to the latest hop's value).
func (c *Compiler) initialSnapshots() ([]gcl.Stmt, error) {
	paths := map[string]bool{}
	addHeaderField := func(inst, field string) {
		paths["pkt."+inst+"."+field] = true
	}
	addKeepTarget := func(raw string) {
		raw = strings.TrimPrefix(raw, "pkt.")
		if members, ok := c.Spec.Groups[raw]; ok {
			for _, m := range members {
				m = strings.TrimPrefix(m, "pkt.")
				if inst, field, ok := splitPath(m); ok {
					addHeaderField(inst, field)
				}
			}
			return
		}
		if inst := c.Env.Prog.Instance(raw); inst != nil && inst.IsHeader {
			for _, f := range c.Env.Prog.InstanceType(raw).Fields {
				addHeaderField(raw, f.Name)
			}
			return
		}
		if inst, field, ok := splitPath(raw); ok {
			if pi := c.Env.Prog.Instance(inst); pi != nil && pi.IsHeader {
				addHeaderField(inst, field)
			}
		}
	}
	var scanExpr func(e Expr)
	scanExpr = func(e Expr) {
		switch x := e.(type) {
		case *Path:
			if x.Initial {
				raw := strings.TrimPrefix(x.Raw, "pkt.")
				if inst, field, ok := splitPath(raw); ok {
					if pi := c.Env.Prog.Instance(inst); pi != nil {
						if pi.IsHeader {
							addHeaderField(inst, field)
						} else {
							paths[raw] = true
						}
					}
				}
			}
		case *Un:
			scanExpr(x.X)
		case *Bin:
			scanExpr(x.X)
			scanExpr(x.Y)
		case *Cast:
			scanExpr(x.X)
		case *Builtin:
			if x.Name == "keep" && len(x.Args) == 1 {
				if p, ok := x.Args[0].(*Path); ok {
					addKeepTarget(p.Raw)
				}
			}
			for _, a := range x.Args {
				scanExpr(a)
			}
		}
	}
	for _, items := range c.Spec.Assumptions {
		for _, it := range items {
			if it.Guard != nil {
				scanExpr(it.Guard)
			}
			scanExpr(it.Cond)
		}
	}
	for _, items := range c.Spec.Assertions {
		for _, it := range items {
			if it.Guard != nil {
				scanExpr(it.Guard)
			}
			scanExpr(it.Cond)
		}
	}
	var out []gcl.Stmt
	for _, raw := range sortedKeys(paths) {
		var cur *smt.Term
		if rest, ok := strings.CutPrefix(raw, "pkt."); ok {
			inst, field, _ := splitPath(rest)
			cur = c.Env.PktFieldVar(inst, field)
		} else {
			inst, field, _ := splitPath(raw)
			cur = c.Env.FieldVar(inst, field)
		}
		snap := c.Env.Ctx.Var("$init."+raw, cur.Width)
		c.initSnaps[raw] = snap
		out = append(out, &gcl.Assign{Var: snap, Rhs: cur})
	}
	return out, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func splitPath(raw string) (inst, field string, ok bool) {
	i := strings.LastIndex(raw, ".")
	if i < 0 {
		return raw, "", false
	}
	return raw[:i], raw[i+1:], true
}

func (c *Compiler) compileProgStmts(stmts []ProgStmt) (gcl.Stmt, error) {
	var out []gcl.Stmt
	for _, s := range stmts {
		g, err := c.compileProgStmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return gcl.NewSeq(out...), nil
}

func (c *Compiler) compileProgStmt(s ProgStmt) (gcl.Stmt, error) {
	switch st := s.(type) {
	case *AssumeStmt:
		items, ok := c.Spec.Assumptions[st.Block]
		if !ok {
			return nil, fmt.Errorf("lpi: line %d: unknown assumption block %q", st.Line, st.Block)
		}
		var out []gcl.Stmt
		for _, it := range items {
			cond, err := c.itemCond(it, true)
			if err != nil {
				return nil, err
			}
			out = append(out, &gcl.Assume{Cond: cond})
		}
		return gcl.NewSeq(out...), nil
	case *AssertStmt:
		items, ok := c.Spec.Assertions[st.Block]
		if !ok {
			return nil, fmt.Errorf("lpi: line %d: unknown assertion block %q", st.Line, st.Block)
		}
		var out []gcl.Stmt
		for i, it := range items {
			cond, err := c.itemCond(it, false)
			if err != nil {
				return nil, err
			}
			info := &AssertionInfo{Block: st.Block, Index: i, Line: it.Line, Text: it.Cond.String()}
			out = append(out, &gcl.Assert{Cond: cond, Label: info.Label(), Meta: info})
			c.assertionSeq++
		}
		return gcl.NewSeq(out...), nil
	case *CallStmt:
		return c.compileCall(st.Component, 0, false)
	case *RecircStmt:
		return c.compileCall(st.Component, st.Bound, st.Resubmit)
	case *GhostAssign:
		rhs, err := c.expr(st.Expr, 0, false)
		if err != nil {
			return nil, err
		}
		g, ok := c.ghosts[st.Name]
		if !ok {
			if rhs.IsBool() {
				g = c.Env.Ctx.BoolVar("$ghost." + st.Name)
			} else {
				g = c.Env.Ctx.Var("$ghost."+st.Name, rhs.Width)
			}
			c.ghosts[st.Name] = g
		}
		if g.IsBool() != rhs.IsBool() {
			return nil, fmt.Errorf("lpi: line %d: ghost %s sort mismatch", st.Line, st.Name)
		}
		return &gcl.Assign{Var: g, Rhs: rhs}, nil
	case *IfStmt:
		cond, err := c.boolExpr(st.Cond, false)
		if err != nil {
			return nil, err
		}
		then, err := c.compileProgStmts(st.Then)
		if err != nil {
			return nil, err
		}
		els, err := c.compileProgStmts(st.Else)
		if err != nil {
			return nil, err
		}
		return &gcl.If{Cond: cond, Then: then, Else: els}, nil
	}
	return nil, fmt.Errorf("lpi: unknown program statement %T", s)
}

// compileCall encodes a component call. Calling a pipeline after another
// pipeline has already run inserts the inter-pipeline packet passing of
// §4.3 (the traffic manager hop). bound > 0 wraps the component in the
// bounded recirculation loop.
func (c *Compiler) compileCall(component string, bound int, resubmit bool) (gcl.Stmt, error) {
	_, isPipeline := c.Env.Prog.Pipelines[component]
	var pre gcl.Stmt = &gcl.Skip{}
	if isPipeline {
		if c.pipelineRan {
			pre = c.Env.PassPacket()
		}
		c.pipelineRan = true
	}
	body, err := c.Env.EncodeComponent(component)
	if err != nil {
		return nil, err
	}
	if bound > 0 {
		if resubmit {
			body = c.Env.EncodeResubmitting(body, bound)
		} else {
			body = c.Env.EncodeRecirculating(body, bound)
		}
	}
	return gcl.NewSeq(pre, body), nil
}

func (c *Compiler) itemCond(it *Item, inAssumption bool) (*smt.Term, error) {
	cond, err := c.boolExpr(it.Cond, inAssumption)
	if err != nil {
		return nil, fmt.Errorf("%w (line %d)", err, it.Line)
	}
	if it.Guard == nil {
		return cond, nil
	}
	guard, err := c.boolExpr(it.Guard, inAssumption)
	if err != nil {
		return nil, fmt.Errorf("%w (line %d)", err, it.Line)
	}
	return c.Env.Ctx.Implies(guard, cond), nil
}

func (c *Compiler) boolExpr(e Expr, inAssumption bool) (*smt.Term, error) {
	t, err := c.expr(e, -1, inAssumption)
	if err != nil {
		return nil, err
	}
	if !t.IsBool() {
		t = c.Env.Ctx.Neq(t, c.Env.Ctx.BV(0, t.Width))
	}
	return t, nil
}

// expr compiles a spec expression. want is the desired width for literals
// (0 unknown, -1 boolean context).
func (c *Compiler) expr(e Expr, want int, inAssumption bool) (*smt.Term, error) {
	ctx := c.Env.Ctx
	switch x := e.(type) {
	case *Num:
		w := want
		if w <= 0 {
			w = 32
		}
		return ctx.BV(x.Val, w), nil
	case *Path:
		return c.pathTerm(x, inAssumption)
	case *Un:
		switch x.Op {
		case "!":
			t, err := c.boolExpr(x.X, inAssumption)
			if err != nil {
				return nil, err
			}
			return ctx.Not(t), nil
		case "~":
			t, err := c.expr(x.X, want, inAssumption)
			if err != nil {
				return nil, err
			}
			return ctx.BVNot(t), nil
		}
		return nil, fmt.Errorf("lpi: unknown unary %q", x.Op)
	case *Bin:
		return c.binTerm(x, want, inAssumption)
	case *OrderCmp:
		t, err := c.orderTerm(x)
		if err != nil {
			return nil, err
		}
		if x.Neg {
			t = ctx.Not(t)
		}
		return t, nil
	case *Cast:
		t, err := c.expr(x.X, 0, inAssumption)
		if err != nil {
			return nil, err
		}
		if t.IsBool() {
			return nil, fmt.Errorf("lpi: cannot cast a boolean to bit<%d>", x.Width)
		}
		return ctx.Resize(t, x.Width), nil
	case *Builtin:
		return c.builtinTerm(x, inAssumption)
	}
	return nil, fmt.Errorf("lpi: unsupported expression %T", e)
}

func (c *Compiler) binTerm(x *Bin, want int, inAssumption bool) (*smt.Term, error) {
	ctx := c.Env.Ctx
	switch x.Op {
	case "&&", "||":
		a, err := c.boolExpr(x.X, inAssumption)
		if err != nil {
			return nil, err
		}
		b, err := c.boolExpr(x.Y, inAssumption)
		if err != nil {
			return nil, err
		}
		if x.Op == "&&" {
			return ctx.And(a, b), nil
		}
		return ctx.Or(a, b), nil
	}
	// Resolve literal widths against the other operand.
	var a, b *smt.Term
	var err error
	if _, isNum := x.X.(*Num); isNum {
		b, err = c.expr(x.Y, 0, inAssumption)
		if err != nil {
			return nil, err
		}
		a, err = c.expr(x.X, b.Width, inAssumption)
	} else {
		a, err = c.expr(x.X, want, inAssumption)
		if err != nil {
			return nil, err
		}
		aw := 0
		if !a.IsBool() {
			aw = a.Width
		}
		b, err = c.expr(x.Y, aw, inAssumption)
	}
	if err != nil {
		return nil, err
	}
	// Boolean equality (e.g. comparing valid() results).
	if a.IsBool() || b.IsBool() {
		if !(a.IsBool() && b.IsBool()) {
			return nil, fmt.Errorf("lpi: sort mismatch in %s", x.String())
		}
		switch x.Op {
		case "==":
			return ctx.Iff(a, b), nil
		case "!=":
			return ctx.Not(ctx.Iff(a, b)), nil
		}
		return nil, fmt.Errorf("lpi: operator %q not defined on booleans", x.Op)
	}
	if a.Width != b.Width {
		if a.IsConst() {
			a = ctx.Resize(a, b.Width)
		} else if b.IsConst() {
			b = ctx.Resize(b, a.Width)
		} else {
			return nil, fmt.Errorf("lpi: width mismatch in %s (%d vs %d)", x.String(), a.Width, b.Width)
		}
	}
	switch x.Op {
	case "==":
		return ctx.Eq(a, b), nil
	case "!=":
		return ctx.Neq(a, b), nil
	case "<":
		return ctx.Ult(a, b), nil
	case ">":
		return ctx.Ugt(a, b), nil
	case "<=":
		return ctx.Ule(a, b), nil
	case ">=":
		return ctx.Uge(a, b), nil
	case "&":
		return ctx.BVAnd(a, b), nil
	case "|":
		return ctx.BVOr(a, b), nil
	case "^":
		return ctx.BVXor(a, b), nil
	case "+":
		return ctx.BVAdd(a, b), nil
	case "-":
		return ctx.BVSub(a, b), nil
	case "<<":
		return ctx.BVShl(a, b), nil
	case ">>":
		return ctx.BVLshr(a, b), nil
	}
	return nil, fmt.Errorf("lpi: unknown operator %q", x.Op)
}

// pathTerm resolves a field path. Resolution rules (§3):
//   - #name          — ghost variable
//   - @pkt.h.f, @h.f — input packet image of a header field
//   - @md.f          — $init snapshot of a metadata field
//   - pkt.h.f        — input image in assumptions, current value in
//     assertions (Figure 6 uses both senses)
//   - h.f / md.f     — current value
func (c *Compiler) pathTerm(x *Path, inAssumption bool) (*smt.Term, error) {
	if strings.HasPrefix(x.Raw, "#") {
		g, ok := c.ghosts[x.Raw]
		if !ok {
			return nil, fmt.Errorf("lpi: undefined ghost %q", x.Raw)
		}
		return g, nil
	}
	raw := x.Raw
	if reg, ok := strings.CutPrefix(raw, "reg."); ok {
		if _, exists := c.Env.Prog.Registers[reg]; !exists {
			return nil, fmt.Errorf("lpi: unknown register %q", reg)
		}
		if x.Initial {
			// Registers are scalarized; their initial value is the
			// variable's pristine symbolic value, which verify snapshots
			// cannot distinguish — refer to the register without @ in an
			// assumption placed before any call instead.
			return nil, fmt.Errorf("lpi: @reg.%s unsupported; constrain reg.%s in an assumption before the first call", reg, reg)
		}
		return c.Env.RegVar(reg), nil
	}
	hadPkt := strings.HasPrefix(raw, "pkt.")
	raw = strings.TrimPrefix(raw, "pkt.")
	inst, field, ok := splitPath(raw)
	if !ok {
		return nil, fmt.Errorf("lpi: %q is not a field path", x.Raw)
	}
	pi := c.Env.Prog.Instance(inst)
	if pi == nil {
		return nil, fmt.Errorf("lpi: unknown instance %q", inst)
	}
	if c.Env.Prog.InstanceType(inst).Field(field) == nil {
		return nil, fmt.Errorf("lpi: instance %q has no field %q", inst, field)
	}
	if x.Initial {
		key := raw
		if pi.IsHeader {
			key = "pkt." + raw
		}
		snap, ok := c.initSnaps[key]
		if !ok {
			return nil, fmt.Errorf("lpi: internal: missing $init snapshot for %q", raw)
		}
		return snap, nil
	}
	if hadPkt && pi.IsHeader && inAssumption {
		return c.Env.PktFieldVar(inst, field), nil
	}
	return c.Env.FieldVar(inst, field), nil
}

func (c *Compiler) orderTerm(x *OrderCmp) (*smt.Term, error) {
	ctx := c.Env.Ctx
	seqs := x.Pattern.Expand()
	var anyOf *smt.Term = ctx.False()
	for _, seq := range seqs {
		if len(seq) > c.Env.MaxHeaders() {
			return nil, fmt.Errorf("lpi: pattern sequence %v longer than the %d declared headers", seq, c.Env.MaxHeaders())
		}
		cond := ctx.True()
		for i := 0; i < c.Env.MaxHeaders(); i++ {
			var id uint64
			if i < len(seq) {
				id = c.Env.HeaderID(seq[i])
				if id == 0 {
					return nil, fmt.Errorf("lpi: unknown header %q in pattern", seq[i])
				}
			}
			slot := c.Env.OrderVar(i)
			if x.Out {
				slot = c.Env.OutOrderVar(i)
			}
			cond = ctx.And(cond, ctx.Eq(slot, ctx.BV(id, encode.OrderWidth)))
		}
		anyOf = ctx.Or(anyOf, cond)
	}
	return anyOf, nil
}

func (c *Compiler) builtinTerm(x *Builtin, inAssumption bool) (*smt.Term, error) {
	ctx := c.Env.Ctx
	argPath := func(i int) (*Path, bool) {
		if i >= len(x.Args) {
			return nil, false
		}
		p, ok := x.Args[i].(*Path)
		return p, ok
	}
	switch x.Name {
	case "valid":
		p, ok := argPath(0)
		if !ok || len(x.Args) != 1 {
			return nil, fmt.Errorf("lpi: valid() takes one header name")
		}
		if inst := c.Env.Prog.Instance(p.Raw); inst == nil || !inst.IsHeader {
			return nil, fmt.Errorf("lpi: valid(%s): not a header instance", p.Raw)
		}
		return c.Env.ValidVar(p.Raw), nil
	case "keep":
		return c.keepTerm(x)
	case "modified":
		return c.modifiedTerm(x)
	case "match", "applied":
		p, ok := argPath(0)
		if !ok {
			return nil, fmt.Errorf("lpi: %s() needs a table name", x.Name)
		}
		ctl, tbl, err := c.resolveTable(p.Raw)
		if err != nil {
			return nil, err
		}
		if x.Name == "applied" {
			return c.Env.AppliedVar(ctl, tbl), nil
		}
		hit := c.Env.HitVar(ctl, tbl)
		if len(x.Args) == 1 {
			return hit, nil
		}
		ap, ok := argPath(1)
		if !ok {
			return nil, fmt.Errorf("lpi: match() second argument must be an action name")
		}
		laid, ok := c.Env.LAID(ctl, tbl, ap.Raw)
		if !ok {
			return nil, fmt.Errorf("lpi: table %s.%s has no action %q", ctl, tbl, ap.Raw)
		}
		return ctx.And(hit, ctx.Eq(c.Env.ActionVar(ctl, tbl), ctx.BV(laid, 16))), nil
	case "accepted", "rejected":
		name := ""
		if p, ok := argPath(0); ok {
			name = p.Raw
		}
		if name == "" {
			if len(c.Env.Prog.Parsers) != 1 {
				return nil, fmt.Errorf("lpi: %s() needs a parser name (program has %d parsers)", x.Name, len(c.Env.Prog.Parsers))
			}
			for n := range c.Env.Prog.Parsers {
				name = n
			}
		}
		if _, ok := c.Env.Prog.Parsers[name]; !ok {
			return nil, fmt.Errorf("lpi: unknown parser %q", name)
		}
		if x.Name == "accepted" {
			return c.Env.AcceptVar(name), nil
		}
		return c.Env.RejectVar(name), nil
	case "forall", "exists":
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("lpi: %s(group, expr) takes two arguments", x.Name)
		}
		gp, ok := argPath(0)
		if !ok {
			return nil, fmt.Errorf("lpi: %s() first argument must be a group name", x.Name)
		}
		members, ok := c.Spec.Groups[gp.Raw]
		if !ok {
			return nil, fmt.Errorf("lpi: unknown group %q", gp.Raw)
		}
		// Quantifiers over finite field groups are expanded into
		// propositional logic (App. B.4).
		acc := ctx.Bool(x.Name == "forall")
		for _, m := range members {
			inst, err := c.expr(substPath(x.Args[1], m), -1, inAssumption)
			if err != nil {
				return nil, err
			}
			if !inst.IsBool() {
				inst = ctx.Neq(inst, ctx.BV(0, inst.Width))
			}
			if x.Name == "forall" {
				acc = ctx.And(acc, inst)
			} else {
				acc = ctx.Or(acc, inst)
			}
		}
		return acc, nil
	}
	return nil, fmt.Errorf("lpi: unknown builtin %q", x.Name)
}

// keepTerm compiles keep(x): the named field/header/group is unchanged
// relative to the input packet.
func (c *Compiler) keepTerm(x *Builtin) (*smt.Term, error) {
	ctx := c.Env.Ctx
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("lpi: keep() takes one argument")
	}
	p, ok := x.Args[0].(*Path)
	if !ok {
		return nil, fmt.Errorf("lpi: keep() argument must be a path, header or group")
	}
	raw := strings.TrimPrefix(p.Raw, "pkt.")
	// Group?
	if members, ok := c.Spec.Groups[raw]; ok {
		cond := ctx.True()
		for _, m := range members {
			t, err := c.keepField(m)
			if err != nil {
				return nil, err
			}
			cond = ctx.And(cond, t)
		}
		return cond, nil
	}
	// Whole header? A header the parser never extracted is forwarded as
	// opaque payload in the KV model and is trivially kept, so the check
	// is guarded by validity. Comparison is against the entry-time
	// snapshot, not the (pipeline-local) packet image.
	if inst := c.Env.Prog.Instance(raw); inst != nil && inst.IsHeader {
		cond := ctx.True()
		for _, f := range c.Env.Prog.InstanceType(raw).Fields {
			snap, ok := c.initSnaps["pkt."+raw+"."+f.Name]
			if !ok {
				return nil, fmt.Errorf("lpi: internal: missing keep snapshot for %s.%s", raw, f.Name)
			}
			cond = ctx.And(cond, ctx.Eq(c.Env.FieldVar(raw, f.Name), snap))
		}
		return ctx.Implies(c.Env.ValidVar(raw), cond), nil
	}
	return c.keepField(raw)
}

func (c *Compiler) keepField(raw string) (*smt.Term, error) {
	raw = strings.TrimPrefix(raw, "pkt.")
	inst, field, ok := splitPath(raw)
	if !ok {
		return nil, fmt.Errorf("lpi: keep(%s): not a field", raw)
	}
	pi := c.Env.Prog.Instance(inst)
	if pi == nil || c.Env.Prog.InstanceType(inst).Field(field) == nil {
		return nil, fmt.Errorf("lpi: keep(%s): unknown field", raw)
	}
	if !pi.IsHeader {
		return nil, fmt.Errorf("lpi: keep(%s): metadata has no packet image; compare with @%s instead", raw, raw)
	}
	snap, ok := c.initSnaps["pkt."+raw]
	if !ok {
		return nil, fmt.Errorf("lpi: internal: missing keep snapshot for %s", raw)
	}
	return c.Env.Ctx.Implies(c.Env.ValidVar(inst),
		c.Env.Ctx.Eq(c.Env.FieldVar(inst, field), snap)), nil
}

func (c *Compiler) modifiedTerm(x *Builtin) (*smt.Term, error) {
	ctx := c.Env.Ctx
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("lpi: modified() takes one argument")
	}
	p, ok := x.Args[0].(*Path)
	if !ok {
		return nil, fmt.Errorf("lpi: modified() argument must be a path or group")
	}
	raw := strings.TrimPrefix(p.Raw, "pkt.")
	if members, ok := c.Spec.Groups[raw]; ok {
		cond := ctx.False()
		for _, m := range members {
			inst, field, ok := splitPath(strings.TrimPrefix(m, "pkt."))
			if !ok {
				return nil, fmt.Errorf("lpi: modified group member %q is not a field", m)
			}
			cond = ctx.Or(cond, c.Env.ModVar(inst, field))
		}
		return cond, nil
	}
	inst, field, ok := splitPath(raw)
	if !ok {
		return nil, fmt.Errorf("lpi: modified(%s): not a field", raw)
	}
	if pi := c.Env.Prog.Instance(inst); pi == nil || c.Env.Prog.InstanceType(inst).Field(field) == nil {
		return nil, fmt.Errorf("lpi: modified(%s): unknown field", raw)
	}
	return c.Env.ModVar(inst, field), nil
}

// resolveTable resolves a table name to (control, table). Unqualified
// names must be unique across controls.
func (c *Compiler) resolveTable(name string) (string, string, error) {
	if i := strings.LastIndex(name, "."); i >= 0 {
		ctl, tbl := name[:i], name[i+1:]
		cc, ok := c.Env.Prog.Controls[ctl]
		if !ok {
			return "", "", fmt.Errorf("lpi: unknown control %q", ctl)
		}
		if _, ok := cc.Tables[tbl]; !ok {
			return "", "", fmt.Errorf("lpi: control %q has no table %q", ctl, tbl)
		}
		return ctl, tbl, nil
	}
	found := ""
	for ctlName, ctl := range c.Env.Prog.Controls {
		if _, ok := ctl.Tables[name]; ok {
			if found != "" {
				return "", "", fmt.Errorf("lpi: table %q is ambiguous (in %s and %s); qualify it", name, found, ctlName)
			}
			found = ctlName
		}
	}
	if found == "" {
		return "", "", fmt.Errorf("lpi: unknown table %q", name)
	}
	return found, name, nil
}

// substPath substitutes member for the `$f` placeholder in a quantifier
// body.
func substPath(e Expr, member string) Expr {
	switch x := e.(type) {
	case *Path:
		if x.Raw == "$f" {
			return &Path{Raw: member, Initial: x.Initial}
		}
		return x
	case *Un:
		return &Un{Op: x.Op, X: substPath(x.X, member)}
	case *Bin:
		return &Bin{Op: x.Op, X: substPath(x.X, member), Y: substPath(x.Y, member)}
	case *Builtin:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = substPath(a, member)
		}
		return &Builtin{Name: x.Name, Args: args}
	default:
		return e
	}
}

// SpecLoC counts the non-empty, non-comment lines of an LPI source — the
// metric of Table 2 / Figure 3.
func SpecLoC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if t != "" && !strings.HasPrefix(t, "//") && !strings.HasPrefix(t, "#") {
			n++
		}
	}
	return n
}

// Ghost returns the ghost variable of a compiled spec (tests use this to
// inspect ghosts).
func (c *Compiler) Ghost(name string) *smt.Term { return c.ghosts[name] }
