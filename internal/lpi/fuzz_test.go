package lpi

import "testing"

// FuzzParse exercises the LPI parser for crash resistance.
func FuzzParse(f *testing.F) {
	f.Add(`assumption { init { pkt.$order == <eth [vlan] (ipv4|ipv6) tcp>; } }
assertion { a = { keep(tcp); match(t, act); modified(x.y); } }
program { assume(init); call(p); assert(a); #g = x.y == 1; if (!#g) { recirc(p, 3); } }`)
	f.Add(`config { path = ./x.p4; }`)
	f.Add(`group g { a.b; c.d; }`)
	f.Add(`assertion { a = { forall(g, keep($f)); } } program { assert(a); }`)
	f.Add(`assertion { a = { (bit<16>)x.y >> 2 == 3; } }`)
	f.Add(`program { assume(; }`)
	f.Add(`<<<>>>`)
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err == nil && spec == nil {
			t.Fatal("nil spec without error")
		}
	})
}
