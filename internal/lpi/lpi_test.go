package lpi

import (
	"reflect"
	"testing"
)

func TestPatternExpansion(t *testing.T) {
	spec, err := Parse(`
assumption { a { pkt.$order == <eth [vlan] (ipv4|ipv6) tcp>; } }
program { assume(a); }
`)
	if err != nil {
		t.Fatal(err)
	}
	item := spec.Assumptions["a"][0]
	oc, ok := item.Cond.(*OrderCmp)
	if !ok {
		t.Fatalf("cond = %T", item.Cond)
	}
	got := oc.Pattern.Expand()
	want := [][]string{
		{"eth", "ipv4", "tcp"},
		{"eth", "ipv6", "tcp"},
		{"eth", "vlan", "ipv4", "tcp"},
		{"eth", "vlan", "ipv6", "tcp"},
	}
	if len(got) != len(want) {
		t.Fatalf("expansions = %v", got)
	}
	found := map[string]bool{}
	for _, seq := range got {
		found[join(seq)] = true
	}
	for _, seq := range want {
		if !found[join(seq)] {
			t.Fatalf("missing expansion %v in %v", seq, got)
		}
	}
}

func join(s []string) string {
	out := ""
	for _, x := range s {
		out += x + "/"
	}
	return out
}

func TestNestedPatterns(t *testing.T) {
	spec, err := Parse(`
assumption { a { pkt.$order == <eth [vlan [vlan2]] ipv4>; } }
program { assume(a); }
`)
	if err != nil {
		t.Fatal(err)
	}
	oc := spec.Assumptions["a"][0].Cond.(*OrderCmp)
	got := oc.Pattern.Expand()
	if len(got) != 3 { // none, vlan, vlan+vlan2
		t.Fatalf("expansions = %v", got)
	}
}

func TestFigure6ParsesVerbatimShape(t *testing.T) {
	// The Figure 6 example, adjusted only for the header names in scope.
	src := `
config {path = ./forward.p4;}
assumption {
	init {
		ig_md.ingress_port & 0x1 == 0;
		pkt.$order == <ethernet ipv4 (tcp|udp)>;
		pkt.ipv4.dst_ip == 10.0.0.1;
	}}
assertion {
	pipe_in = {
		if (@pkt.ipv4.protocol == 6)
			pkt.ipv4.dst_ip == 10.0.0.2;
		if (match(fwd,send))
			modified(pkt.ipv4.dst_ip);
	}
	pipe_out = { std_meta.drop == 0; }
}
program {
	assume(init);
	call(ingress_pipeline);
	assert(pipe_in);
	#quit = (ig_md.drop == 0) || (ig_md.to_cpu == 0);
	if (!#quit) {
		call(egress_pipeline);
		assert(pipe_out);
	}}
`
	spec, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Config["path"] != "./forward.p4" {
		t.Fatalf("config path = %q", spec.Config["path"])
	}
	if len(spec.Assumptions["init"]) != 3 {
		t.Fatalf("init items = %d", len(spec.Assumptions["init"]))
	}
	if len(spec.Assertions["pipe_in"]) != 2 || len(spec.Assertions["pipe_out"]) != 1 {
		t.Fatalf("assertion blocks: %d / %d", len(spec.Assertions["pipe_in"]), len(spec.Assertions["pipe_out"]))
	}
	if len(spec.Program) != 5 {
		t.Fatalf("program stmts = %d", len(spec.Program))
	}
	ifStmt, ok := spec.Program[4].(*IfStmt)
	if !ok || len(ifStmt.Then) != 2 {
		t.Fatalf("program tail = %+v", spec.Program[4])
	}
	if !reflect.DeepEqual(spec.ModifiedPaths, []string{"ipv4.dst_ip"}) {
		t.Fatalf("modified paths = %v", spec.ModifiedPaths)
	}
}

func TestGuardedBlockWithBraces(t *testing.T) {
	spec, err := Parse(`
assertion { a = {
	if (valid(tcp)) {
		tcp.src_port == 1;
		tcp.dst_port == 2;
	}
} }
program { assert(a); }
`)
	if err != nil {
		t.Fatal(err)
	}
	items := spec.Assertions["a"]
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2 (one per guarded condition)", len(items))
	}
	for _, it := range items {
		if it.Guard == nil {
			t.Fatal("guard missing")
		}
	}
}

func TestSpecLoCSkipsCommentsAndBlanks(t *testing.T) {
	src := "// comment\n\nassumption { a { x.y == 1; } }\n# hash comment\nprogram { assume(a); }\n"
	if n := SpecLoC(src); n != 2 {
		t.Fatalf("SpecLoC = %d, want 2", n)
	}
}

func TestParseErrorsDetail(t *testing.T) {
	bad := []string{
		`assumption { b { pkt.$order == <eth (ipv4|>; } }`,
		`assumption { b { pkt.$order == ; } }`,
		`program { recirc(x); }`,
		`program { #g; }`,
		`assumption { dup { x.y == 1; } dup { x.y == 2; } }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCastParses(t *testing.T) {
	spec, err := Parse(`assertion { a = { (bit<16>)x.y == 3; } } program { assert(a); }`)
	if err != nil {
		t.Fatal(err)
	}
	bin := spec.Assertions["a"][0].Cond.(*Bin)
	if _, ok := bin.X.(*Cast); !ok {
		t.Fatalf("lhs = %T, want Cast", bin.X)
	}
}
