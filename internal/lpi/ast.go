// Package lpi implements LPI — the "Language for Programmable network
// Intent" of §3 of the paper: a declarative specification language with
// assumption blocks (preconditions on the input packet, metadata and
// switch state), assertion blocks (expected behaviours), and a program
// block that composes the data-plane components and places assumptions and
// assertions between them.
//
// The grammar follows Figure 5; Figure 6's example is accepted verbatim
// modulo the P4 program reference in the config section.
package lpi

import "fmt"

// Spec is a parsed LPI specification.
type Spec struct {
	// Config key/values (e.g. path = ./forward.p4).
	Config map[string]string
	// Assumptions maps block names to their items.
	Assumptions map[string][]*Item
	// Assertions maps block names to their items.
	Assertions map[string][]*Item
	// Program is the composition script.
	Program []ProgStmt
	// Groups maps field-group names to member paths (App. B.4).
	Groups map[string][]string

	// ModifiedPaths lists "inst.field" names used with modified(), needed
	// to configure encode.Options.TrackModified before encoding.
	ModifiedPaths []string
}

// Item is one entry of an assumption or assertion block: an optionally
// guarded condition. In an assumption block it contributes
// assume(guard => cond); in an assertion block assert(guard => cond).
type Item struct {
	Guard Expr // nil when unguarded
	Cond  Expr
	Line  int
}

// ProgStmt is a statement of the program block.
type ProgStmt interface{ progStmt() }

// AssumeStmt inserts a named assumption block.
type AssumeStmt struct {
	Block string
	Line  int
}

// AssertStmt checks a named assertion block.
type AssertStmt struct {
	Block string
	Line  int
}

// CallStmt executes a component (parser, control, deparser or pipeline).
// Calling a second pipeline implies inter-pipeline packet passing (§4.3).
type CallStmt struct {
	Component string
	Line      int
}

// RecircStmt executes a component under bounded recirculation (or, with
// Resubmit set, bounded resubmission: re-entry without deparsing).
type RecircStmt struct {
	Component string
	Bound     int
	Resubmit  bool
	Line      int
}

// GhostAssign defines or updates a ghost variable (#name = expr).
type GhostAssign struct {
	Name string
	Expr Expr
	Line int
}

// IfStmt conditions program statements on a spec expression.
type IfStmt struct {
	Cond Expr
	Then []ProgStmt
	Else []ProgStmt
	Line int
}

func (*AssumeStmt) progStmt()  {}
func (*AssertStmt) progStmt()  {}
func (*CallStmt) progStmt()    {}
func (*RecircStmt) progStmt()  {}
func (*GhostAssign) progStmt() {}
func (*IfStmt) progStmt()      {}

// ---- spec expressions ----

// Expr is an LPI expression.
type Expr interface {
	specExpr()
	String() string
}

// Num is an integer literal.
type Num struct{ Val uint64 }

// Path references a field, metadata, ghost (#x) or header, optionally with
// the @ initial-value prefix.
type Path struct {
	Raw     string // e.g. "pkt.ipv4.dst_ip", "ig_md.ttl", "#quit"
	Initial bool   // true for @-prefixed paths
}

// Un is a unary operator application.
type Un struct {
	Op string
	X  Expr
}

// Bin is a binary operator application.
type Bin struct {
	Op   string
	X, Y Expr
}

// OrderCmp is `pkt.$order == <pattern>` or `pkt.$out_order == <pattern>`.
type OrderCmp struct {
	Out     bool // compare the deparsed output order
	Pattern *HdrPattern
	Neg     bool
}

// Cast is (bit<W>) X — zero-extend or truncate.
type Cast struct {
	Width int
	X     Expr
}

// Builtin is one of LPI's property helpers: keep, match, modified, valid,
// accepted, rejected, applied, forall, exists.
type Builtin struct {
	Name string
	Args []Expr
}

// StrArg is a bare identifier argument to a builtin (table, action, group
// or header name).
type StrArg struct{ Name string }

func (*Num) specExpr()      {}
func (*Path) specExpr()     {}
func (*Un) specExpr()       {}
func (*Bin) specExpr()      {}
func (*OrderCmp) specExpr() {}
func (*Cast) specExpr()     {}
func (*Builtin) specExpr()  {}
func (*StrArg) specExpr()   {}

func (e *Num) String() string { return fmt.Sprintf("%d", e.Val) }
func (e *Path) String() string {
	if e.Initial {
		return "@" + e.Raw
	}
	return e.Raw
}
func (e *Un) String() string  { return e.Op + e.X.String() }
func (e *Bin) String() string { return "(" + e.X.String() + " " + e.Op + " " + e.Y.String() + ")" }
func (e *OrderCmp) String() string {
	name := "pkt.$order"
	if e.Out {
		name = "pkt.$out_order"
	}
	op := "=="
	if e.Neg {
		op = "!="
	}
	return name + " " + op + " " + e.Pattern.String()
}
func (e *Cast) String() string {
	return fmt.Sprintf("(bit<%d>)%s", e.Width, e.X.String())
}
func (e *Builtin) String() string {
	s := e.Name + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
func (e *StrArg) String() string { return e.Name }

// ---- header-order patterns ----

// HdrPattern is a header-sequence pattern: `<eth [vlan] (ipv4|ipv6) tcp>`.
type HdrPattern struct {
	Elems []PatElem
}

// PatElem is one element of a pattern.
type PatElem interface{ patElem() }

// PatLit is a plain header name.
type PatLit struct{ Name string }

// PatOpt is an optional subsequence `[ ... ]`.
type PatOpt struct{ Elems []PatElem }

// PatAlt is an alternation `( a | b | ... )` of subsequences.
type PatAlt struct{ Alts [][]PatElem }

func (*PatLit) patElem() {}
func (*PatOpt) patElem() {}
func (*PatAlt) patElem() {}

func (p *HdrPattern) String() string {
	return "<" + patElemsString(p.Elems) + ">"
}

func patElemsString(elems []PatElem) string {
	s := ""
	for i, e := range elems {
		if i > 0 {
			s += " "
		}
		switch x := e.(type) {
		case *PatLit:
			s += x.Name
		case *PatOpt:
			s += "[" + patElemsString(x.Elems) + "]"
		case *PatAlt:
			s += "("
			for j, alt := range x.Alts {
				if j > 0 {
					s += "|"
				}
				s += patElemsString(alt)
			}
			s += ")"
		}
	}
	return s
}

// Expand enumerates the concrete header sequences the pattern matches.
func (p *HdrPattern) Expand() [][]string {
	return expandElems(p.Elems)
}

func expandElems(elems []PatElem) [][]string {
	out := [][]string{{}}
	for _, e := range elems {
		var choices [][]string
		switch x := e.(type) {
		case *PatLit:
			choices = [][]string{{x.Name}}
		case *PatOpt:
			choices = append([][]string{{}}, expandElems(x.Elems)...)
		case *PatAlt:
			for _, alt := range x.Alts {
				choices = append(choices, expandElems(alt)...)
			}
		}
		var next [][]string
		for _, prefix := range out {
			for _, ch := range choices {
				seq := append(append([]string{}, prefix...), ch...)
				next = append(next, seq)
			}
		}
		out = next
	}
	return out
}
