package lpi

import (
	"fmt"
	"strings"

	"aquila/internal/p4"
)

// Parse parses an LPI specification.
func Parse(src string) (*Spec, error) {
	raw, err := p4.LexAll(src)
	if err != nil {
		return nil, fmt.Errorf("lpi: %w", err)
	}
	// Split ">>" so patterns and comparisons can consume single ">".
	var toks []p4.Token
	for _, t := range raw {
		if t.Kind == p4.TokPunct && t.Text == ">>" {
			toks = append(toks,
				p4.Token{Kind: p4.TokPunct, Text: ">", Line: t.Line, Col: t.Col},
				p4.Token{Kind: p4.TokPunct, Text: ">", Line: t.Line, Col: t.Col + 1})
			continue
		}
		toks = append(toks, t)
	}
	p := &sparser{toks: toks}
	spec := &Spec{
		Config:      map[string]string{},
		Assumptions: map[string][]*Item{},
		Assertions:  map[string][]*Item{},
		Groups:      map[string][]string{},
	}
	for !p.at(p4.TokEOF, "") {
		if err := p.parseSection(spec); err != nil {
			return nil, err
		}
	}
	collectModified(spec)
	return spec, nil
}

func collectModified(spec *Spec) {
	seen := map[string]bool{}
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Builtin:
			if x.Name == "modified" || x.Name == "keep" {
				for _, a := range x.Args {
					if pth, ok := a.(*Path); ok {
						name := strings.TrimPrefix(pth.Raw, "pkt.")
						if strings.Contains(name, ".") && !seen[name] {
							seen[name] = true
							spec.ModifiedPaths = append(spec.ModifiedPaths, name)
						}
					}
				}
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Un:
			walkExpr(x.X)
		case *Bin:
			walkExpr(x.X)
			walkExpr(x.Y)
		}
	}
	for _, items := range spec.Assumptions {
		for _, it := range items {
			if it.Guard != nil {
				walkExpr(it.Guard)
			}
			walkExpr(it.Cond)
		}
	}
	for _, items := range spec.Assertions {
		for _, it := range items {
			if it.Guard != nil {
				walkExpr(it.Guard)
			}
			walkExpr(it.Cond)
		}
	}
	var walkProg func(ps []ProgStmt)
	walkProg = func(ps []ProgStmt) {
		for _, s := range ps {
			switch x := s.(type) {
			case *GhostAssign:
				walkExpr(x.Expr)
			case *IfStmt:
				walkExpr(x.Cond)
				walkProg(x.Then)
				walkProg(x.Else)
			}
		}
	}
	walkProg(spec.Program)
}

type sparser struct {
	toks []p4.Token
	pos  int
}

func (p *sparser) cur() p4.Token { return p.toks[p.pos] }

func (p *sparser) at(kind p4.TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *sparser) accept(kind p4.TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expect(kind p4.TokKind, text string) (p4.Token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("lpi: %d:%d: expected %q, got %q", t.Line, t.Col, want, t.String())
	}
	p.pos++
	return t, nil
}

func (p *sparser) errf(format string, args ...interface{}) error {
	t := p.cur()
	return fmt.Errorf("lpi: %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *sparser) parseSection(spec *Spec) error {
	t := p.cur()
	if t.Kind != p4.TokIdent {
		return p.errf("expected section, got %q", t.String())
	}
	switch t.Text {
	case "config":
		p.pos++
		if _, err := p.expect(p4.TokPunct, "{"); err != nil {
			return err
		}
		for !p.accept(p4.TokPunct, "}") {
			key, err := p.expect(p4.TokIdent, "")
			if err != nil {
				return err
			}
			if _, err := p.expect(p4.TokPunct, "="); err != nil {
				return err
			}
			var val strings.Builder
			for !p.at(p4.TokPunct, ";") && !p.at(p4.TokEOF, "") {
				val.WriteString(p.cur().Text)
				p.pos++
			}
			if _, err := p.expect(p4.TokPunct, ";"); err != nil {
				return err
			}
			spec.Config[key.Text] = val.String()
		}
		return nil
	case "assumption":
		p.pos++
		return p.parseBlocks(spec.Assumptions)
	case "assertion":
		p.pos++
		return p.parseBlocks(spec.Assertions)
	case "group":
		p.pos++
		name, err := p.expect(p4.TokIdent, "")
		if err != nil {
			return err
		}
		if _, err := p.expect(p4.TokPunct, "{"); err != nil {
			return err
		}
		for !p.accept(p4.TokPunct, "}") {
			member, err := p.expect(p4.TokIdent, "")
			if err != nil {
				return err
			}
			if _, err := p.expect(p4.TokPunct, ";"); err != nil {
				return err
			}
			spec.Groups[name.Text] = append(spec.Groups[name.Text], member.Text)
		}
		return nil
	case "program":
		p.pos++
		if _, err := p.expect(p4.TokPunct, "{"); err != nil {
			return err
		}
		stmts, err := p.parseProgStmts()
		if err != nil {
			return err
		}
		spec.Program = stmts
		return nil
	default:
		return p.errf("unknown section %q", t.Text)
	}
}

// parseBlocks parses `{ name [=] { item* } ... }` — Figure 6 uses both the
// `init { ... }` and `pipe_in = { ... }` forms.
func (p *sparser) parseBlocks(dst map[string][]*Item) error {
	if _, err := p.expect(p4.TokPunct, "{"); err != nil {
		return err
	}
	for !p.accept(p4.TokPunct, "}") {
		name, err := p.expect(p4.TokIdent, "")
		if err != nil {
			return err
		}
		p.accept(p4.TokPunct, "=")
		if _, err := p.expect(p4.TokPunct, "{"); err != nil {
			return err
		}
		var items []*Item
		for !p.accept(p4.TokPunct, "}") {
			its, err := p.parseItem()
			if err != nil {
				return err
			}
			items = append(items, its...)
		}
		if _, dup := dst[name.Text]; dup {
			return p.errf("duplicate block %q", name.Text)
		}
		dst[name.Text] = items
	}
	return nil
}

// parseItem parses one block entry; a guarded entry may carry several
// conditions in braces, each becoming its own Item.
func (p *sparser) parseItem() ([]*Item, error) {
	line := p.cur().Line
	if p.accept(p4.TokIdent, "if") {
		if _, err := p.expect(p4.TokPunct, "("); err != nil {
			return nil, err
		}
		guard, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ")"); err != nil {
			return nil, err
		}
		var conds []Expr
		if p.accept(p4.TokPunct, "{") {
			for !p.accept(p4.TokPunct, "}") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(p4.TokPunct, ";"); err != nil {
					return nil, err
				}
				conds = append(conds, e)
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokPunct, ";"); err != nil {
				return nil, err
			}
			conds = append(conds, e)
		}
		var out []*Item
		for _, cnd := range conds {
			out = append(out, &Item{Guard: guard, Cond: cnd, Line: line})
		}
		return out, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(p4.TokPunct, ";"); err != nil {
		return nil, err
	}
	return []*Item{{Cond: e, Line: line}}, nil
}

func (p *sparser) parseProgStmts() ([]ProgStmt, error) {
	var out []ProgStmt
	for !p.accept(p4.TokPunct, "}") {
		s, err := p.parseProgStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *sparser) parseProgStmt() (ProgStmt, error) {
	t := p.cur()
	line := t.Line
	if t.Kind != p4.TokIdent {
		return nil, p.errf("expected program statement, got %q", t.String())
	}
	switch {
	case t.Text == "assume", t.Text == "assert", t.Text == "call":
		p.pos++
		if _, err := p.expect(p4.TokPunct, "("); err != nil {
			return nil, err
		}
		name, err := p.expect(p4.TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ";"); err != nil {
			return nil, err
		}
		switch t.Text {
		case "assume":
			return &AssumeStmt{Block: name.Text, Line: line}, nil
		case "assert":
			return &AssertStmt{Block: name.Text, Line: line}, nil
		default:
			return &CallStmt{Component: name.Text, Line: line}, nil
		}
	case t.Text == "recirc", t.Text == "resubmit":
		p.pos++
		if _, err := p.expect(p4.TokPunct, "("); err != nil {
			return nil, err
		}
		name, err := p.expect(p4.TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ","); err != nil {
			return nil, err
		}
		n, err := p.expect(p4.TokInt, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ";"); err != nil {
			return nil, err
		}
		return &RecircStmt{Component: name.Text, Bound: int(n.Val), Resubmit: t.Text == "resubmit", Line: line}, nil
	case t.Text == "if":
		p.pos++
		if _, err := p.expect(p4.TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, "{"); err != nil {
			return nil, err
		}
		then, err := p.parseProgStmts()
		if err != nil {
			return nil, err
		}
		var els []ProgStmt
		if p.accept(p4.TokIdent, "else") {
			if _, err := p.expect(p4.TokPunct, "{"); err != nil {
				return nil, err
			}
			els, err = p.parseProgStmts()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: line}, nil
	case strings.HasPrefix(t.Text, "#"):
		p.pos++
		if _, err := p.expect(p4.TokPunct, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ";"); err != nil {
			return nil, err
		}
		return &GhostAssign{Name: t.Text, Expr: e, Line: line}, nil
	}
	return nil, p.errf("unknown program statement %q", t.Text)
}

// ---- expressions ----

var lpiBuiltins = map[string]bool{
	"keep": true, "match": true, "modified": true, "valid": true,
	"accepted": true, "rejected": true, "applied": true,
	"forall": true, "exists": true,
}

var lpiPrec = [][]string{
	{"||"},
	{"&&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"|"},
	{"^"},
	{"&"},
	{"<<"},
	{"+", "-"},
}

func (p *sparser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *sparser) parseBin(level int) (Expr, error) {
	if level >= len(lpiPrec) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range lpiPrec[level] {
			if p.at(p4.TokPunct, op) {
				if op == ">" && p.rightShiftAhead() {
					continue
				}
				matched = op
				break
			}
		}
		if matched == "" && level == 7 && p.rightShiftAhead() {
			p.pos += 2
			rhs, err := p.parseBin(level + 1)
			if err != nil {
				return nil, err
			}
			lhs = &Bin{Op: ">>", X: lhs, Y: rhs}
			continue
		}
		if matched == "" {
			return lhs, nil
		}
		// Order comparisons: path == <pattern>.
		if (matched == "==" || matched == "!=") && p.orderLHS(lhs) != 0 {
			save := p.pos
			p.pos++
			if p.at(p4.TokPunct, "<") {
				pat, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				return &OrderCmp{Out: p.orderLHS(lhs) == 2, Pattern: pat, Neg: matched == "!="}, nil
			}
			p.pos = save
		}
		p.pos++
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: matched, X: lhs, Y: rhs}
	}
}

// orderLHS returns 1 for pkt.$order, 2 for pkt.$out_order, 0 otherwise.
func (p *sparser) orderLHS(e Expr) int {
	pth, ok := e.(*Path)
	if !ok {
		return 0
	}
	switch pth.Raw {
	case "pkt.$order":
		return 1
	case "pkt.$out_order":
		return 2
	}
	return 0
}

func (p *sparser) rightShiftAhead() bool {
	if !p.at(p4.TokPunct, ">") {
		return false
	}
	if p.pos+1 >= len(p.toks) {
		return false
	}
	n := p.toks[p.pos+1]
	c := p.cur()
	return n.Kind == p4.TokPunct && n.Text == ">" && n.Line == c.Line && n.Col == c.Col+1
}

func (p *sparser) parseUnary() (Expr, error) {
	switch {
	case p.accept(p4.TokPunct, "!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: "!", X: x}, nil
	case p.accept(p4.TokPunct, "~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: "~", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *sparser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == p4.TokInt:
		p.pos++
		return &Num{Val: t.Val}, nil
	case t.Kind == p4.TokPunct && t.Text == "(":
		// Cast `(bit<W>)x` or parenthesized expression.
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == p4.TokIdent && p.toks[p.pos+1].Text == "bit" {
			p.pos += 2
			if _, err := p.expect(p4.TokPunct, "<"); err != nil {
				return nil, err
			}
			w, err := p.expect(p4.TokInt, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokPunct, ">"); err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokPunct, ")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{Width: int(w.Val), X: x}, nil
		}
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(p4.TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == p4.TokIdent:
		p.pos++
		name := t.Text
		initial := false
		if strings.HasPrefix(name, "@") {
			initial = true
			name = name[1:]
		}
		// Builtins: keep(...), match(...), X.isValid().
		if strings.HasSuffix(name, ".isValid") && p.at(p4.TokPunct, "(") {
			p.pos++
			if _, err := p.expect(p4.TokPunct, ")"); err != nil {
				return nil, err
			}
			inst := strings.TrimSuffix(name, ".isValid")
			return &Builtin{Name: "valid", Args: []Expr{&Path{Raw: inst}}}, nil
		}
		if lpiBuiltins[name] && p.at(p4.TokPunct, "(") {
			p.pos++
			var args []Expr
			for !p.accept(p4.TokPunct, ")") {
				if len(args) > 0 {
					if _, err := p.expect(p4.TokPunct, ","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
			}
			return &Builtin{Name: name, Args: args}, nil
		}
		return &Path{Raw: name, Initial: initial}, nil
	}
	return nil, p.errf("expected expression, got %q", t.String())
}

// parsePattern parses `< elem* >`.
func (p *sparser) parsePattern() (*HdrPattern, error) {
	if _, err := p.expect(p4.TokPunct, "<"); err != nil {
		return nil, err
	}
	elems, err := p.parsePatElems(">")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(p4.TokPunct, ">"); err != nil {
		return nil, err
	}
	return &HdrPattern{Elems: elems}, nil
}

func (p *sparser) parsePatElems(stop string) ([]PatElem, error) {
	var out []PatElem
	for {
		t := p.cur()
		switch {
		case t.Kind == p4.TokPunct && (t.Text == stop || t.Text == "|" || t.Text == "]" || t.Text == ")"):
			return out, nil
		case t.Kind == p4.TokIdent:
			p.pos++
			out = append(out, &PatLit{Name: t.Text})
		case t.Kind == p4.TokPunct && t.Text == "[":
			p.pos++
			inner, err := p.parsePatElems("]")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(p4.TokPunct, "]"); err != nil {
				return nil, err
			}
			out = append(out, &PatOpt{Elems: inner})
		case t.Kind == p4.TokPunct && t.Text == "(":
			p.pos++
			var alts [][]PatElem
			for {
				alt, err := p.parsePatElems(")")
				if err != nil {
					return nil, err
				}
				alts = append(alts, alt)
				if p.accept(p4.TokPunct, "|") {
					continue
				}
				break
			}
			if _, err := p.expect(p4.TokPunct, ")"); err != nil {
				return nil, err
			}
			out = append(out, &PatAlt{Alts: alts})
		default:
			return nil, p.errf("unexpected token %q in header pattern", t.String())
		}
	}
}
