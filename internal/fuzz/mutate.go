package fuzz

import (
	"fmt"
	"math/rand"

	"aquila/internal/p4"
	"aquila/internal/tables"
)

// Mutator applies seeded structural mutations to a parsed P4lite program
// (and its table snapshot). Mutations are AST-level — drop/duplicate/insert
// statements, widen or narrow fields, perturb select cases and transition
// targets, empty parser states, toggle validity guards, mark table actions
// @defaultonly, rewrite const entries and snapshot entry priorities — so
// every mutant is near-well-formed and most survive the type checker
// (byte-level mutation would almost always die in the lexer instead of
// reaching the encoder). Candidate collection walks the AST in declaration
// order only, so a Mutator with the same seed produces the same edit
// sequence on the same input.
type Mutator struct {
	rng *rand.Rand
}

// NewMutator returns a mutator with a deterministic random stream.
func NewMutator(seed int64) *Mutator {
	return &Mutator{rng: rand.New(rand.NewSource(seed))}
}

// candidate is one applicable edit: apply mutates the AST in place.
type candidate struct {
	desc  string
	apply func()
}

// Mutate applies up to n random mutations to prog in place and returns
// descriptions of the edits made. Candidates are re-collected after each
// edit so compound mutations stay well-defined. The caller re-prints and
// re-typechecks the program; mutants that no longer check are simply
// discarded upstream.
func (m *Mutator) Mutate(prog *p4.Program, n int) []string {
	var applied []string
	for i := 0; i < n; i++ {
		cands := m.collect(prog)
		if len(cands) == 0 {
			break
		}
		c := cands[m.rng.Intn(len(cands))]
		c.apply()
		applied = append(applied, c.desc)
	}
	return applied
}

// block is a mutable statement list location in the AST.
type block struct {
	where string
	get   func() []p4.Stmt
	set   func([]p4.Stmt)
}

// blocks lists every statement list in the program, in declaration order.
func blocks(prog *p4.Program) []block {
	var out []block
	for _, pn := range sortedKeys(prog.Parsers) {
		par := prog.Parsers[pn]
		for _, sn := range stateOrder(par) {
			st := par.States[sn]
			out = append(out, block{
				where: fmt.Sprintf("parser %s state %s", pn, sn),
				get:   func() []p4.Stmt { return st.Stmts },
				set:   func(s []p4.Stmt) { st.Stmts = s },
			})
		}
	}
	for _, cn := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[cn]
		for _, an := range memberOrder(ctl) {
			act, ok := ctl.Actions[an]
			if !ok {
				continue
			}
			out = append(out, block{
				where: fmt.Sprintf("control %s action %s", cn, an),
				get:   func() []p4.Stmt { return act.Body },
				set:   func(s []p4.Stmt) { act.Body = s },
			})
		}
		out = append(out, block{
			where: fmt.Sprintf("control %s apply", cn),
			get:   func() []p4.Stmt { return ctl.Apply },
			set:   func(s []p4.Stmt) { ctl.Apply = s },
		})
	}
	for _, dn := range sortedKeys(prog.Deparsers) {
		dp := prog.Deparsers[dn]
		out = append(out, block{
			where: fmt.Sprintf("deparser %s", dn),
			get:   func() []p4.Stmt { return dp.Stmts },
			set:   func(s []p4.Stmt) { dp.Stmts = s },
		})
	}
	return out
}

// collect enumerates every applicable single edit, in a deterministic
// order.
func (m *Mutator) collect(prog *p4.Program) []candidate {
	var cands []candidate
	add := func(desc string, apply func()) {
		cands = append(cands, candidate{desc: desc, apply: apply})
	}

	headerInsts := headerInstances(prog)

	// --- Statement-level edits over every block ---
	for _, b := range blocks(prog) {
		list := b.get()
		for i := range list {
			add(fmt.Sprintf("drop stmt %d in %s", i, b.where), func() {
				l := b.get()
				b.set(append(append([]p4.Stmt{}, l[:i]...), l[i+1:]...))
			})
			add(fmt.Sprintf("dup stmt %d in %s", i, b.where), func() {
				l := b.get()
				out := append([]p4.Stmt{}, l[:i+1]...)
				out = append(out, l[i])
				out = append(out, l[i+1:]...)
				b.set(out)
			})
		}
		if len(list) > 0 {
			add(fmt.Sprintf("clear all stmts in %s", b.where), func() {
				b.set(nil)
			})
		}
		if len(headerInsts) > 0 {
			inst := headerInsts[m.rng.Intn(len(headerInsts))]
			valid := m.rng.Intn(2) == 0
			add(fmt.Sprintf("insert set%sValid(%s) in %s", map[bool]string{true: "", false: "In"}[valid], inst, b.where), func() {
				b.set(append([]p4.Stmt{&p4.SetValidStmt{Header: inst, Valid: valid}}, b.get()...))
			})
		}
	}

	// --- Validity-guard toggles in control apply blocks ---
	for _, cn := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[cn]
		for i, s := range ctl.Apply {
			i, s := i, s
			if ifs, ok := s.(*p4.IfStmt); ok {
				if _, isGuard := ifs.Cond.(*p4.IsValidExpr); isGuard && len(ifs.Else) == 0 {
					add(fmt.Sprintf("unwrap isValid guard at apply[%d] in %s", i, cn), func() {
						out := append([]p4.Stmt{}, ctl.Apply[:i]...)
						out = append(out, ifs.Then...)
						out = append(out, ctl.Apply[i+1:]...)
						ctl.Apply = out
					})
				}
			}
			if ap, ok := s.(*p4.ApplyStmt); ok && len(headerInsts) > 0 {
				inst := headerInsts[m.rng.Intn(len(headerInsts))]
				add(fmt.Sprintf("wrap %s.apply() in %s.isValid() guard in %s", ap.Table, inst, cn), func() {
					ctl.Apply[i] = &p4.IfStmt{
						Cond: &p4.IsValidExpr{Instance: inst},
						Then: []p4.Stmt{ap},
					}
				})
			}
		}
	}

	// --- Field width changes ---
	for _, hn := range sortedKeys(prog.Headers) {
		h := prog.Headers[hn]
		for _, f := range h.Fields {
			f := f
			if f.Width < 61 {
				add(fmt.Sprintf("widen %s.%s to %d bits", hn, f.Name, f.Width+4), func() {
					f.Width += 4
				})
			}
			if f.Width > 4 {
				add(fmt.Sprintf("narrow %s.%s to %d bits", hn, f.Name, f.Width-3), func() {
					f.Width -= 3
				})
			}
		}
	}

	// --- Parser transition and select-case edits ---
	for _, pn := range sortedKeys(prog.Parsers) {
		par := prog.Parsers[pn]
		states := stateOrder(par)
		targets := append(append([]string{}, states...), "accept", "reject")
		for _, sn := range states {
			st := par.States[sn]
			tr := st.Trans
			if tr == nil {
				continue
			}
			switch tr.Kind {
			case p4.TransDirect:
				tgt := targets[m.rng.Intn(len(targets))]
				if tgt != tr.Target {
					add(fmt.Sprintf("retarget %s.%s -> %s", pn, sn, tgt), func() {
						tr.Target = tgt
					})
				}
			case p4.TransSelect:
				for ci, c := range tr.Cases {
					if !c.IsDefault {
						add(fmt.Sprintf("perturb select value in %s.%s case %d", pn, sn, ci), func() {
							c.Val = uint64(m.rng.Intn(256))
						})
						add(fmt.Sprintf("toggle mask on %s.%s case %d", pn, sn, ci), func() {
							if c.HasMask {
								c.HasMask, c.Mask = false, 0
							} else {
								c.HasMask, c.Mask = true, uint64(1+m.rng.Intn(255))
							}
						})
					}
					tgt := targets[m.rng.Intn(len(targets))]
					if tgt != c.Target {
						add(fmt.Sprintf("retarget %s.%s case %d -> %s", pn, sn, ci, tgt), func() {
							c.Target = tgt
						})
					}
					if len(tr.Cases) > 1 {
						add(fmt.Sprintf("drop select case %d in %s.%s", ci, pn, sn), func() {
							tr.Cases = append(append([]*p4.SelectCase{}, tr.Cases[:ci]...), tr.Cases[ci+1:]...)
						})
					}
				}
			}
		}
	}

	// --- Table edits ---
	for _, cn := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[cn]
		for _, tn := range memberOrder(ctl) {
			tbl, ok := ctl.Tables[tn]
			if !ok {
				continue
			}
			for _, an := range tbl.Actions {
				if !tbl.DefaultOnly[an] {
					add(fmt.Sprintf("mark %s.%s action %s @defaultonly", cn, tn, an), func() {
						if tbl.DefaultOnly == nil {
							tbl.DefaultOnly = map[string]bool{}
						}
						tbl.DefaultOnly[an] = true
						if act := ctl.Actions[an]; act != nil {
							act.DefaultOnly = true
						}
					})
				}
				if an != tbl.DefaultAction {
					add(fmt.Sprintf("set %s.%s default_action = %s", cn, tn, an), func() {
						tbl.DefaultAction = an
						tbl.DefaultArgs = defaultArgsFor(ctl, an)
					})
				}
			}
			for ei, e := range tbl.ConstEntries {
				for ki := range e.KeyVals {
					add(fmt.Sprintf("perturb const entry %d key %d in %s.%s", ei, ki, cn, tn), func() {
						e.KeyVals[ki] = uint64(m.rng.Intn(256))
					})
				}
				add(fmt.Sprintf("drop const entry %d in %s.%s", ei, cn, tn), func() {
					tbl.ConstEntries = append(append([]*p4.ConstEntry{}, tbl.ConstEntries[:ei]...), tbl.ConstEntries[ei+1:]...)
				})
			}
		}
	}

	// --- Pipeline recirculation bound ---
	for _, pln := range sortedKeys(prog.Pipelines) {
		pl := prog.Pipelines[pln]
		if pl.Recirc > 0 {
			add(fmt.Sprintf("recirc %s -> %d", pln, pl.Recirc-1), func() {
				pl.Recirc--
			})
		}
	}

	return cands
}

// defaultArgsFor builds zero-valued argument expressions matching an
// action's parameter list, so a mutated default_action stays well-typed.
func defaultArgsFor(ctl *p4.Control, action string) []p4.Expr {
	act := ctl.Actions[action]
	if act == nil {
		return nil
	}
	out := make([]p4.Expr, len(act.Params))
	for i := range act.Params {
		out[i] = &p4.IntLit{Val: 0}
	}
	return out
}

// headerInstances lists header (not struct) instance names in declaration
// order.
func headerInstances(prog *p4.Program) []string {
	var out []string
	for _, inst := range prog.Instances {
		if inst.IsHeader {
			out = append(out, inst.Name)
		}
	}
	return out
}

// MutateSnapshot applies up to n seeded edits to a table snapshot clone:
// perturb entry priorities and key values, drop entries, wildcard a key.
// The original snapshot is never modified; the mutated clone is returned
// together with descriptions of the edits.
func (m *Mutator) MutateSnapshot(snap *tables.Snapshot, n int) (*tables.Snapshot, []string) {
	if snap == nil {
		return nil, nil
	}
	out := snap.Clone()
	var applied []string
	for i := 0; i < n; i++ {
		var cands []candidate
		for _, tn := range out.Tables() {
			es := out.Entries(tn)
			for ei, e := range es {
				cands = append(cands, candidate{
					desc: fmt.Sprintf("entry %d in %s: priority %d -> random", ei, tn, e.Priority),
					apply: func() {
						e.Priority = m.rng.Intn(16)
					},
				})
				for ki := range e.Keys {
					cands = append(cands, candidate{
						desc: fmt.Sprintf("entry %d in %s: perturb key %d", ei, tn, ki),
						apply: func() {
							e.Keys[ki].Value = uint64(m.rng.Intn(256))
						},
					})
					if e.Keys[ki].Mask != 0 {
						cands = append(cands, candidate{
							desc: fmt.Sprintf("entry %d in %s: wildcard key %d", ei, tn, ki),
							apply: func() {
								e.Keys[ki] = tables.Wildcard()
							},
						})
					}
				}
				if len(es) > 1 {
					cands = append(cands, candidate{
						desc: fmt.Sprintf("drop entry %d in %s", ei, tn),
						apply: func() {
							rest := append(append([]*tables.Entry{}, es[:ei]...), es[ei+1:]...)
							out.Remove(tn)
							for _, r := range rest {
								out.Add(tn, r)
							}
						},
					})
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		c := cands[m.rng.Intn(len(cands))]
		c.apply()
		applied = append(applied, c.desc)
	}
	return out, applied
}
