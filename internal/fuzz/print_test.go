package fuzz

import (
	"fmt"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/p4"
)

// TestPrintRoundTrip pins the printer's contract: for every generator
// configuration the fuzzer draws from, Print(parse(src)) must itself
// parse, and printing the re-parsed program must reach a fixpoint
// (print∘parse∘print == print). Byte-identical second-generation output
// means the printer is a faithful, canonical renderer of the AST subset
// the mutator manipulates.
func TestPrintRoundTrip(t *testing.T) {
	type tcase struct {
		name string
		src  string
	}
	var srcs []tcase
	srcs = append(srcs, tcase{"switch_small", genprog.Assemble(genprog.SwitchT("small")).Source})
	for seed := int64(1); seed <= 20; seed++ {
		cfg := genprog.RandomConfig(seed)
		srcs = append(srcs, tcase{fmt.Sprintf("random_seed_%d", seed), genprog.Assemble(cfg).Source})
	}

	for _, tc := range srcs {
		t.Run(tc.name, func(t *testing.T) {
			prog1, err := p4.ParseAndCheck(tc.name, tc.src)
			if err != nil {
				t.Fatalf("original does not parse: %v", err)
			}
			out1 := Print(prog1)
			prog2, err := p4.ParseAndCheck(tc.name+"-printed", out1)
			if err != nil {
				t.Fatalf("printed program does not re-parse: %v\n--- printed ---\n%s", err, out1)
			}
			out2 := Print(prog2)
			if out1 != out2 {
				t.Fatalf("print/parse/print is not a fixpoint\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
		})
	}
}
