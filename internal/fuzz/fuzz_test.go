package fuzz

import (
	"encoding/json"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/tables"
)

// TestMutatorDeterministic pins seed determinism: two mutators with the
// same seed produce identical edit trails and identical mutant source on
// the same input, and a different seed diverges.
func TestMutatorDeterministic(t *testing.T) {
	const seed = int64(7)
	bm := genprog.Assemble(genprog.RandomConfig(3))
	gen := func(mseed int64) (string, []string) {
		prog, err := p4.ParseAndCheck("mdet", bm.Source)
		if err != nil {
			t.Fatalf("seed 3 program does not parse: %v", err)
		}
		muts := NewMutator(mseed).Mutate(prog, 5)
		return Print(prog), muts
	}
	srcA, mutsA := gen(seed)
	srcB, mutsB := gen(seed)
	if srcA != srcB {
		t.Fatalf("same mutator seed %d produced different mutants", seed)
	}
	if strings.Join(mutsA, "|") != strings.Join(mutsB, "|") {
		t.Fatalf("same mutator seed %d produced different edit trails:\n%v\n%v", seed, mutsA, mutsB)
	}
	srcC, _ := gen(seed + 1)
	if srcC == srcA {
		t.Fatalf("mutator seeds %d and %d produced identical mutants", seed, seed+1)
	}
}

// rediscover runs a bounded rediscovery campaign for one injected
// historical encoder bug and returns the result.
func rediscover(t *testing.T, bug string, seed int64, iters int) *Result {
	t.Helper()
	eng := New(Config{Seed: seed, Iters: iters, TargetBug: bug, SeedPrograms: 3})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("campaign (seed %d, bug %q): %v", seed, bug, err)
	}
	if res.FoundAtIter == 0 {
		t.Fatalf("bug %q not rediscovered in %d iterations (seed %d, %d rejected, %d coverage points)",
			bug, res.Iters, seed, res.Rejected, res.CoveragePoints)
	}
	t.Logf("bug %q rediscovered at iteration %d (seed %d, %d rejected, %d coverage points)",
		bug, res.FoundAtIter, seed, res.Rejected, res.CoveragePoints)

	// The divergence must be attributable to the injected bug: the same
	// input under a clean encoder must pass refinement.
	d := res.Divergences[0]
	clean := New(Config{Seed: seed})
	divs, ok := clean.refinementOracle(d.Input, mustParse(d.Input.Source), freshObs())
	if !ok {
		t.Fatalf("clean encoder rejected the divergent input")
	}
	if len(divs) != 0 {
		t.Errorf("input diverges even without the injected bug — latent real bug? %s", divs[0])
	}
	return res
}

// TestRediscoverEmptyStateAccept pins the §6 story: with the
// "empty-state-accept" historical bug injected into the encoder, the
// fuzzer finds an input exposing it (a mutant with an emptied parser
// state) within a bounded budget, deterministically.
func TestRediscoverEmptyStateAccept(t *testing.T) {
	rediscover(t, "empty-state-accept", 1, 400)
}

// TestRediscoverIgnoreDefaultOnly does the same for the
// "ignore-defaultonly" bug: a mutant marking a table action @defaultonly,
// verified under unknown entries, must expose the annotation being
// ignored.
func TestRediscoverIgnoreDefaultOnly(t *testing.T) {
	rediscover(t, "ignore-defaultonly", 1, 400)
}

// TestMinimizerShrinks pins the minimizer acceptance bar: a divergent
// program found by rediscovery shrinks by at least 50% of its statements
// while preserving the divergence.
func TestMinimizerShrinks(t *testing.T) {
	eng := New(Config{Seed: 1, Iters: 400, TargetBug: "empty-state-accept", SeedPrograms: 3})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(res.Divergences) == 0 {
		t.Fatalf("no divergence to minimize")
	}
	d := res.Divergences[0]
	before := CountStmts(mustParse(d.Input.Source))
	min := eng.Minimize(d)
	after := CountStmts(mustParse(min.Source))
	t.Logf("minimized %d -> %d statements", before, after)
	if after*2 > before {
		t.Fatalf("minimizer shrank %d -> %d statements; need at least 50%%", before, after)
	}
	// The minimized input must still diverge.
	prog := mustParse(min.Source)
	divs, ok := eng.refinementOracle(min, prog, freshObs())
	if !ok || len(divs) == 0 {
		t.Fatalf("minimized input no longer diverges")
	}
}

// TestCleanCampaign runs a short thorough campaign against the unmodified
// encoder: every oracle on every mutant, no divergences expected. The
// long-form campaign lives behind cmd/aquila-fuzz (see EXPERIMENTS.md).
func TestCleanCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix campaign is slow; run without -short")
	}
	eng := New(Config{Seed: 42, Iters: 6, SeedPrograms: 2, Thorough: true})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	for _, d := range res.Divergences {
		t.Errorf("unexpected divergence: %s", d)
	}
	t.Logf("clean campaign: %d iters, %d rejected, %d coverage points", res.Iters, res.Rejected, res.CoveragePoints)
}

// TestCampaignDeterministic pins engine-level determinism: two campaigns
// with the same seed report identical aggregate results.
func TestCampaignDeterministic(t *testing.T) {
	run := func() *Result {
		eng := New(Config{Seed: 5, Iters: 30, TargetBug: "empty-state-accept", SeedPrograms: 2})
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Iters != b.Iters || a.Rejected != b.Rejected || a.CoveragePoints != b.CoveragePoints ||
		a.FoundAtIter != b.FoundAtIter || len(a.Divergences) != len(b.Divergences) {
		t.Fatalf("same campaign seed gave different results:\n%+v\n%+v", a, b)
	}
}

// TestChurnOracleClean runs the delta-determinism oracle directly on a
// generated program, without and then with an installed snapshot: every
// random delta pushed through a warm session must reproduce the fresh
// run's canonical bytes, so a clean pipeline yields zero divergences.
func TestChurnOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("verifier-backed oracle is slow; run without -short")
	}
	eng := New(Config{Seed: 11})
	bm := genprog.Assemble(genprog.RandomConfig(11))
	prog := mustParse(bm.Source)
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	in := &Input{Source: bm.Source, Calls: bm.Calls, Seed: 11}
	for i := 0; i < 2; i++ {
		for _, d := range eng.churnOracle(in, prog, spec, freshObs()) {
			t.Errorf("nil-snapshot round %d: %s", i, d)
		}
	}
	// Grow a snapshot with random adds, then churn against it so the
	// replace/remove arms get exercised too.
	snap := tables.NewSnapshot()
	for i := 0; i < 3; i++ {
		d := eng.randomDelta(prog, snap)
		if d == nil {
			t.Fatalf("program has no installable table")
		}
		if d.Ops[0].Kind == tables.OpAdd {
			if err := d.Apply(snap); err != nil {
				t.Fatalf("seed delta: %v", err)
			}
		}
	}
	in.Snap = snap
	for i := 0; i < 3; i++ {
		for _, d := range eng.churnOracle(in, prog, spec, freshObs()) {
			t.Errorf("snapshot round %d: %s", i, d)
		}
	}
}

// TestServeOracleClean runs the serve-mode churn oracle directly on a
// generated program: random delta batches pushed through an in-process
// aquila-serve daemon must answer with canonical bytes identical to
// fresh runs, so a clean pipeline yields zero divergences.
func TestServeOracleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("verifier-backed oracle is slow; run without -short")
	}
	eng := New(Config{Seed: 13})
	bm := genprog.Assemble(genprog.RandomConfig(13))
	prog := mustParse(bm.Source)
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	// Seed a snapshot so the daemon's sessions start from installed
	// entries and the replace/remove delta arms get exercised.
	snap := tables.NewSnapshot()
	for i := 0; i < 3; i++ {
		d := eng.randomDelta(prog, snap)
		if d == nil {
			t.Fatalf("program has no installable table")
		}
		if d.Ops[0].Kind == tables.OpAdd {
			if err := d.Apply(snap); err != nil {
				t.Fatalf("seed delta: %v", err)
			}
		}
	}
	in := &Input{Source: bm.Source, Calls: bm.Calls, Seed: 13, Snap: snap}
	for i := 0; i < 2; i++ {
		for _, d := range eng.serveOracle(in, prog, spec, freshObs()) {
			t.Errorf("round %d: %s", i, d)
		}
	}
}

// TestFormatSnapshotRoundTrip checks the snapshot text round-trip the
// repro format relies on.
func TestFormatSnapshotRoundTrip(t *testing.T) {
	snap := tables.NewSnapshot()
	snap.Add("C.t0", &tables.Entry{Keys: []tables.KeyMatch{tables.Exact(7)}, Action: "a", Args: []uint64{3}, Priority: -1})
	snap.Add("C.t0", &tables.Entry{Keys: []tables.KeyMatch{tables.Ternary(8, 0xf0)}, Action: "b", Priority: -1})
	snap.Add("C.t1", &tables.Entry{Keys: []tables.KeyMatch{tables.Wildcard()}, Action: "drop", Priority: -1})
	text := FormatSnapshot(snap)
	back, err := tables.ParseSnapshot(text)
	if err != nil {
		t.Fatalf("formatted snapshot does not re-parse: %v\n%s", err, text)
	}
	if FormatSnapshot(back) != text {
		t.Fatalf("snapshot format not a fixpoint:\n%s\n--- vs ---\n%s", text, FormatSnapshot(back))
	}
}

// TestReproWriteAndReplay exercises the full repro path: package a
// divergence, write it to disk, load it back, replay it, and check the
// generated standalone test file is valid Go.
func TestReproWriteAndReplay(t *testing.T) {
	eng := New(Config{Seed: 1, Iters: 400, TargetBug: "empty-state-accept", SeedPrograms: 3})
	res, err := eng.Run()
	if err != nil || len(res.Divergences) == 0 {
		t.Fatalf("no divergence to package (err=%v)", err)
	}
	d := res.Divergences[0]
	d.Input = eng.Minimize(d)
	r := NewRepro(d, "empty-state-accept")
	dir := t.TempDir()
	jsonPath, err := r.WriteFiles(dir)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	loaded, err := LoadRepro(jsonPath)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ReplayReproJSON(t, mustJSON(t, loaded))

	// The emitted standalone test must be syntactically valid Go.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawTest := false
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), "_test.go") {
			sawTest = true
			src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := parser.ParseFile(token.NewFileSet(), ent.Name(), src, 0); err != nil {
				t.Errorf("generated test file does not parse: %v", err)
			}
		}
	}
	if !sawTest {
		t.Fatalf("no generated test file in %s", dir)
	}
}

func mustJSON(t *testing.T, r *Repro) string {
	t.Helper()
	js, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal repro: %v", err)
	}
	return string(js)
}

// TestReplayRepros replays every committed reproducer under
// testdata/fuzz-repros. Live records (open bugs) must still diverge on
// their recorded oracle; records marked "fixed": true are regression pins
// for bugs fixed in-tree and must replay divergence-free. The healthy
// state is therefore: no live records, any number of fixed ones.
func TestReplayRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "fuzz-repros", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			r, err := LoadRepro(path)
			if err != nil {
				t.Fatal(err)
			}
			divs, err := r.Replay()
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			for _, d := range divs {
				if d.Oracle == r.Oracle {
					if r.Fixed {
						t.Fatalf("fixed repro diverges again: %s", d)
					}
					t.Logf("repro still diverges: %s", d)
					return
				}
			}
			if !r.Fixed {
				t.Fatalf("repro no longer diverges on oracle %s — the bug is fixed; mark %s \"fixed\": true", r.Oracle, path)
			}
		})
	}
}
