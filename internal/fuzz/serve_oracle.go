// serve_oracle.go is oracle 5: serve-mode churn determinism. The
// continuous-verification daemon (internal/serve) promises that every
// report it answers over HTTP is byte-identical to a fresh verification
// of the session's mutated snapshot. The oracle stands up an in-process
// daemon over the fuzz input, pushes a short batch of random deltas
// through one session, and byte-compares each response body against a
// fresh run — catching drift the bare-session churn oracle cannot see:
// handler-layer body mangling, queue mis-ordering, or daemon-side
// session state leaking between applies.
package fuzz

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/serve"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

// serveOracleDeltas bounds the random batch per input; each delta costs
// one warm apply plus one fresh differential run.
const serveOracleDeltas = 2

func (e *Engine) serveOracle(in *Input, prog *p4.Program, spec *lpi.Spec, o *obs.Obs) []*Divergence {
	srv, err := serve.New(serve.Config{Prog: prog, Spec: spec, Snap: in.Snap, ProgramRef: "fuzz", Obs: o})
	if err != nil {
		return nil
	}
	defer srv.Close()
	h := srv.Handler()
	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	if rr := post("/sessions", `{"id":"fuzz"}`); rr.Code != http.StatusCreated {
		// Session construction rejected the input (encode limit, budget);
		// the bare-session churn oracle already accounts for these.
		return nil
	}
	var snap *tables.Snapshot
	if in.Snap != nil {
		snap = in.Snap.Clone()
	} else {
		snap = tables.NewSnapshot()
	}
	for k := 0; k < serveOracleDeltas; k++ {
		delta := e.randomDelta(prog, snap)
		if delta == nil {
			return nil
		}
		deltaText := tables.FormatDelta(delta)
		rr := post("/sessions/fuzz/deltas", deltaText)
		if rr.Code != http.StatusOK {
			return nil // delta rejected; not a determinism question
		}
		if err := delta.Apply(snap); err != nil {
			return nil
		}
		fresh, err := verify.Run(prog, snap, spec, verify.Options{FindAll: true, Parallel: 1, Obs: o})
		if err != nil {
			return []*Divergence{{
				Oracle: "serve-churn",
				Detail: "fresh verification failed on mutated snapshot after " + strings.TrimSpace(deltaText) + ": " + err.Error(),
				Input:  in,
			}}
		}
		freshJS, err := fresh.CanonicalJSON()
		if err != nil {
			return nil
		}
		if !bytes.Equal(rr.Body.Bytes(), freshJS) {
			return []*Divergence{{
				Oracle: "serve-churn",
				Detail: fmt.Sprintf("daemon report bytes differ from fresh run after delta %d (%s)",
					k+1, strings.TrimSpace(deltaText)),
				Input: in,
			}}
		}
	}
	return nil
}
