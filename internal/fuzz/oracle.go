package fuzz

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"aquila/internal/encode"
	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/smt"
	"aquila/internal/symexec"
	"aquila/internal/tables"
	"aquila/internal/validate"
	"aquila/internal/verify"
)

// Input is one fuzzing input: a program (as source, so cloning is a
// re-parse), its table snapshot, and the component call order.
type Input struct {
	Source string
	Snap   *tables.Snapshot
	Calls  []string
	// Seed is the generator seed of the corpus ancestor; Muts is the
	// mutation trail from it. Both are reporting metadata only.
	Seed int64
	Muts []string
}

// Divergence is one oracle failure: an input on which two components of
// the pipeline that must agree did not.
type Divergence struct {
	// Oracle is "refinement", "engine-matrix", "model-soundness",
	// "churn-delta" or "serve-churn".
	Oracle string
	Detail string
	Input  *Input
}

func (d *Divergence) String() string {
	return fmt.Sprintf("%s oracle: %s (seed %d, %d mutations)",
		d.Oracle, d.Detail, d.Input.Seed, len(d.Input.Muts))
}

// engineConfig is one cell of the differential engine matrix.
type engineConfig struct {
	name string
	opts verify.Options
}

// engineMatrix spans {fresh, parallel, incremental} × {plain, preprocess,
// slice}: every solving strategy the driver exposes must produce the same
// verdict and byte-identical canonical report. Cells that would be
// redundant (preprocess+slice together re-tests both pure cells' code
// paths) are collapsed into one combined cell to keep per-input cost
// bounded.
func engineMatrix() []engineConfig {
	return []engineConfig{
		{"fresh", verify.Options{FindAll: true, Parallel: 1}},
		{"fresh+preprocess", verify.Options{FindAll: true, Parallel: 1, Preprocess: true}},
		{"fresh+slice", verify.Options{FindAll: true, Parallel: 1, Slice: true}},
		{"parallel", verify.Options{FindAll: true, Parallel: 4}},
		{"parallel+slice", verify.Options{FindAll: true, Parallel: 4, Slice: true}},
		{"incremental", verify.Options{FindAll: true, Parallel: 1, Incremental: true}},
		{"incremental+preprocess+slice", verify.Options{FindAll: true, Parallel: 1, Incremental: true, Preprocess: true, Slice: true}},
	}
}

// oracles runs every configured oracle over one input and returns the
// divergences found (nil when the pipeline is self-consistent on this
// input). The obs registry o collects the coverage signal for the run.
func (e *Engine) oracles(in *Input, prog *p4.Program, o *obs.Obs) []*Divergence {
	divs, ok := e.refinementOracle(in, prog, o)
	if !ok {
		return nil
	}
	return append(divs, e.deepOracles(in, prog, o)...)
}

// refinementOracle is oracle 1: the GCL encoding and the independent
// interpreter must admit the same inputs and compute the same
// observables. In bug-rediscovery mode the encoder under test carries an
// injected historical bug, and a mismatch means the fuzzer found an input
// exposing it. ok is false when the pipeline rejected the input (counted
// as rejected, not as a divergence).
func (e *Engine) refinementOracle(in *Input, prog *p4.Program, o *obs.Obs) (divs []*Divergence, ok bool) {
	encOpts := encode.Options{InjectEncoderBug: e.cfg.TargetBug}
	res, err := validate.ValidateWith(prog, in.Snap, in.Calls, encOpts, validate.Config{Obs: o})
	if err != nil {
		e.rejected++
		return nil, false
	}
	if !res.Equivalent {
		var vars []string
		for _, m := range res.Mismatches {
			vars = append(vars, m.Var)
		}
		divs = append(divs, &Divergence{
			Oracle: "refinement",
			Detail: fmt.Sprintf("%d observables differ: %s", len(res.Mismatches), strings.Join(vars, ", ")),
			Input:  in,
		})
	}
	return divs, true
}

// deepOracles runs oracles 2 and 3 (engine matrix, model soundness) over
// the invalid-header-access property. It is a no-op in bug-rediscovery
// mode: the injected bug lives in the encoder, so every engine-matrix
// cell would inherit it uniformly and agree.
func (e *Engine) deepOracles(in *Input, prog *p4.Program, o *obs.Obs) []*Divergence {
	if e.cfg.TargetBug != "" {
		return nil
	}
	var divs []*Divergence
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, in.Calls))
	if err != nil {
		e.rejected++
		return divs
	}

	// Oracle 2: engine matrix. Every solving strategy must agree on the
	// verdict and on canonical report bytes.
	base, baseJSON, err := e.runCell(prog, in, spec, engineMatrix()[0], o)
	if err != nil {
		e.rejected++
		return divs
	}
	for _, cell := range engineMatrix()[1:] {
		rep, js, err := e.runCell(prog, in, spec, cell, o)
		if err != nil {
			divs = append(divs, &Divergence{
				Oracle: "engine-matrix",
				Detail: fmt.Sprintf("%s failed where fresh succeeded: %v", cell.name, err),
				Input:  in,
			})
			continue
		}
		if rep.Holds != base.Holds {
			divs = append(divs, &Divergence{
				Oracle: "engine-matrix",
				Detail: fmt.Sprintf("verdict mismatch: fresh holds=%v, %s holds=%v", base.Holds, cell.name, rep.Holds),
				Input:  in,
			})
		} else if string(js) != string(baseJSON) {
			divs = append(divs, &Divergence{
				Oracle: "engine-matrix",
				Detail: fmt.Sprintf("canonical report bytes differ between fresh and %s", cell.name),
				Input:  in,
			})
		}
	}

	// Oracle 3: model soundness. Every Sat counterexample the verifier
	// produced must describe a packet the program can actually exhibit:
	// replay the pinned packet through the independent path-enumerating
	// executor and demand it also violates the property.
	if !base.Holds {
		if detail := e.replayCounterexamples(prog, in, base); detail != "" {
			divs = append(divs, &Divergence{Oracle: "model-soundness", Detail: detail, Input: in})
		}
	}

	// Oracle 4: churn determinism. A warm Session fed one random delta
	// must report exactly what a fresh verification of the mutated
	// snapshot reports, byte for byte.
	divs = append(divs, e.churnOracle(in, prog, spec, o)...)

	// Oracle 5: serve-mode churn determinism. The same contract holds
	// end-to-end through the in-process aquila-serve daemon.
	divs = append(divs, e.serveOracle(in, prog, spec, o)...)
	return divs
}

// churnOracle exercises the delta re-verification contract: synthesize
// one random single-op delta against the input's snapshot, push it
// through a warm verify.Session, and demand canonical report bytes
// identical to a fresh run on the mutated snapshot. Any drift — a wrong
// replay, a stale learned clause constraining a verdict, a
// nondeterministic re-encode — shows up as a byte diff.
func (e *Engine) churnOracle(in *Input, prog *p4.Program, spec *lpi.Spec, o *obs.Obs) []*Divergence {
	delta := e.randomDelta(prog, in.Snap)
	if delta == nil {
		return nil
	}
	opts := verify.Options{Parallel: 1}
	opts.Obs = o
	sess, err := verify.NewSession(prog, in.Snap, spec, opts)
	if err != nil {
		return nil // input rejected at session construction; other oracles cover it
	}
	defer sess.Close()
	rep, err := sess.Apply(delta)
	if err != nil {
		return nil // delta rejected (encode limit, bad op); not a divergence
	}
	sessJS, err := rep.CanonicalJSON()
	if err != nil {
		return []*Divergence{{
			Oracle: "churn-delta",
			Detail: fmt.Sprintf("session report not canonicalizable after %q: %v", tables.FormatDelta(delta), err),
			Input:  in,
		}}
	}
	freshOpts := verify.Options{FindAll: true, Parallel: 1}
	freshOpts.Obs = o
	fresh, err := verify.Run(prog, sess.Snapshot(), spec, freshOpts)
	if err != nil {
		return []*Divergence{{
			Oracle: "churn-delta",
			Detail: fmt.Sprintf("fresh verification failed on mutated snapshot after %q: %v", tables.FormatDelta(delta), err),
			Input:  in,
		}}
	}
	freshJS, err := fresh.CanonicalJSON()
	if err != nil {
		return nil
	}
	if string(sessJS) != string(freshJS) {
		return []*Divergence{{
			Oracle: "churn-delta",
			Detail: fmt.Sprintf("canonical report bytes differ between warm session and fresh run after %q", tables.FormatDelta(delta)),
			Input:  in,
		}}
	}
	return nil
}

// randomDelta synthesizes one random single-op delta against prog's
// tables: an add of a random entry, or — when the snapshot already holds
// entries for the chosen table — possibly a replace or a remove. Returns
// nil when the program has no table an entry can be installed in.
func (e *Engine) randomDelta(prog *p4.Program, snap *tables.Snapshot) *tables.Delta {
	type site struct {
		fq  string
		ctl *p4.Control
		tbl *p4.Table
	}
	var sites []site
	for _, ctlName := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, tn := range memberOrder(ctl) {
			tbl, ok := ctl.Tables[tn]
			if !ok || len(installableActions(tbl)) == 0 {
				continue
			}
			sites = append(sites, site{ctlName + "." + tn, ctl, tbl})
		}
	}
	if len(sites) == 0 {
		return nil
	}
	s := sites[e.rng.Intn(len(sites))]
	op := tables.DeltaOp{Kind: tables.OpAdd, Table: s.fq, Entry: e.randomEntry(s.ctl, s.tbl)}
	if snap != nil {
		if n := len(snap.Entries(s.fq)); n > 0 {
			switch e.rng.Intn(3) {
			case 1:
				op = tables.DeltaOp{Kind: tables.OpReplace, Table: s.fq, Index: e.rng.Intn(n), Entry: e.randomEntry(s.ctl, s.tbl)}
			case 2:
				op = tables.DeltaOp{Kind: tables.OpRemove, Table: s.fq, Index: e.rng.Intn(n)}
			}
		}
	}
	return &tables.Delta{Ops: []tables.DeltaOp{op}}
}

// randomEntry synthesizes an entry for a table: exact key matches with
// small values and a random installable action with in-range arguments.
func (e *Engine) randomEntry(ctl *p4.Control, tbl *p4.Table) *tables.Entry {
	ent := &tables.Entry{}
	for range tbl.Keys {
		ent.Keys = append(ent.Keys, tables.Exact(uint64(e.rng.Intn(256))))
	}
	acts := installableActions(tbl)
	ent.Action = acts[e.rng.Intn(len(acts))]
	if act := ctl.Actions[ent.Action]; act != nil {
		for _, pm := range act.Params {
			w := pm.Width
			if w > 16 {
				w = 16
			}
			ent.Args = append(ent.Args, uint64(e.rng.Int63())&((1<<uint(w))-1))
		}
	}
	return ent
}

// installableActions lists the actions entries may install (everything
// not marked @defaultonly).
func installableActions(tbl *p4.Table) []string {
	var out []string
	for _, an := range tbl.Actions {
		if !tbl.DefaultOnly[an] {
			out = append(out, an)
		}
	}
	return out
}

// runCell runs one engine-matrix cell and returns the report plus its
// canonical bytes.
func (e *Engine) runCell(prog *p4.Program, in *Input, spec *lpi.Spec, cell engineConfig, o *obs.Obs) (*verify.Report, []byte, error) {
	opts := cell.opts
	opts.Obs = o
	rep, err := verify.Run(prog, in.Snap, spec, opts)
	if err != nil {
		return nil, nil, err
	}
	js, err := rep.CanonicalJSON()
	if err != nil {
		return nil, nil, err
	}
	return rep, js, nil
}

// maxReplays bounds how many counterexamples oracle 3 replays per input;
// replay cost is one full symbolic execution each.
const maxReplays = 2

// replayCounterexamples checks verifier counterexamples against the
// path-based executor. It returns a non-empty detail string on the first
// unsound model found.
func (e *Engine) replayCounterexamples(prog *p4.Program, in *Input, rep *verify.Report) string {
	prop := invalidAccessProperty(prog)
	replayed := 0
	for _, v := range rep.Violations {
		if replayed >= maxReplays {
			break
		}
		if v.Model == nil || v.Cond == nil {
			continue
		}
		pins := packetPins(v)
		if len(pins) == 0 {
			continue
		}
		replayed++
		eng := symexec.New(prog, in.Snap, symexec.Options{MaxPaths: 200000})
		ctx := eng.Ctx()
		assume := ctx.True()
		for _, p := range pins {
			assume = ctx.And(assume, ctx.Eq(ctx.Var(p.name, p.width), ctx.BVBig(p.val, p.width)))
		}
		res, err := eng.Run(in.Calls, assume, prop)
		if err != nil {
			// The baseline blowing up on an input the verifier handled is
			// a capability gap, not unsoundness.
			continue
		}
		if len(res.Violations) == 0 {
			return fmt.Sprintf("verifier counterexample for %q pins a packet (%s) on which the path executor finds no violation",
				v.Label, pinsString(pins))
		}
	}
	return ""
}

// pin is one packet-input variable assignment extracted from a model.
type pin struct {
	name  string
	width int
	val   *big.Int
}

// packetPins extracts the packet-order input assignment from a violation
// model: the pkt.$order.N variables both engines name identically.
func packetPins(v *verify.Violation) []pin {
	var out []pin
	seen := map[string]bool{}
	for _, t := range smt.Vars(v.Cond) {
		if t.IsBool() || seen[t.Name] || !strings.HasPrefix(t.Name, "pkt.$order.") {
			continue
		}
		seen[t.Name] = true
		out = append(out, pin{name: t.Name, width: t.Width, val: v.Model.BV(t)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func pinsString(pins []pin) string {
	parts := make([]string, len(pins))
	for i, p := range pins {
		parts[i] = fmt.Sprintf("%s=%d", p.name, p.val)
	}
	return strings.Join(parts, " ")
}

// invalidAccessProperty mirrors progs.InvalidHeaderAccessSpec for the
// symexec engine (the same construction the bench harness uses).
func invalidAccessProperty(prog *p4.Program) symexec.Property {
	type check struct{ applied, valid string }
	var checks []check
	for _, ctlName := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[ctlName]
		for _, tn := range memberOrder(ctl) {
			tbl, ok := ctl.Tables[tn]
			if !ok {
				continue
			}
			for _, h := range progs.TableHeaders(prog, ctl, tbl) {
				checks = append(checks, check{applied: "$applied." + ctlName + "." + tn, valid: h + ".$valid"})
			}
		}
	}
	return func(ctx *smt.Ctx, get func(string, int) *smt.Term) *smt.Term {
		cond := ctx.True()
		for _, c := range checks {
			cond = ctx.And(cond, ctx.Or(ctx.Not(get(c.applied, 0)), get(c.valid, 0)))
		}
		return cond
	}
}
