package fuzz

import (
	"fmt"

	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/tables"
)

// maxMinimizeAttempts bounds the minimizer's total oracle re-runs per
// divergence.
const maxMinimizeAttempts = 2000

// Minimize shrinks a divergent input with greedy delta debugging over AST
// reduction units — drop a statement, inline a branch, remove a parser
// state or select case, drop an unreferenced table or action, drop a
// const or snapshot entry — keeping each reduction only if the same
// oracle still diverges on the shrunk input. The returned input replays
// the divergence; the original is never modified.
func (e *Engine) Minimize(d *Divergence) *Input {
	best := d.Input
	attempts := 0
	check := func(in *Input) bool {
		attempts++
		prog, err := p4.ParseAndCheck("fuzz-min", in.Source)
		if err != nil {
			return false
		}
		savedRejects := e.rejected
		o := &obs.Obs{Metrics: obs.NewRegistry()}
		var divs []*Divergence
		if d.Oracle == "refinement" {
			// The deep oracles cost ~8 verifier runs per attempt; a
			// refinement divergence needs none of them to re-fire.
			divs, _ = e.refinementOracle(in, prog, o)
		} else {
			divs = e.oracles(in, prog, o)
		}
		e.rejected = savedRejects
		for _, nd := range divs {
			if nd.Oracle == d.Oracle {
				return true
			}
		}
		return false
	}

	improved := true
	for improved && attempts < maxMinimizeAttempts {
		improved = false
		n := len(listReductions(mustParse(best.Source), best.Snap))
		for i := 0; i < n && attempts < maxMinimizeAttempts; i++ {
			prog := mustParse(best.Source)
			reds := listReductions(prog, best.Snap)
			if i >= len(reds) {
				break
			}
			snap := reds[i].apply()
			src := Print(prog)
			cand := &Input{Source: src, Snap: snap, Calls: best.Calls, Seed: best.Seed,
				Muts: append(append([]string{}, best.Muts...), "minimize: "+reds[i].desc)}
			if check(cand) {
				best = cand
				improved = true
				e.logf("minimize: kept %q (%d stmts)", reds[i].desc, CountStmts(mustParse(src)))
				break
			}
		}
	}
	return best
}

func mustParse(src string) *p4.Program {
	prog, err := p4.ParseAndCheck("fuzz-min", src)
	if err != nil {
		// The minimizer only prints programs that type-checked a moment
		// ago; a parse failure here is a printer bug, surfaced loudly.
		panic(fmt.Sprintf("fuzz: minimizer produced unparseable program: %v", err))
	}
	return prog
}

// CountStmts counts every statement in the program, including statements
// nested in branches — the size metric minimization is measured against.
func CountStmts(prog *p4.Program) int {
	n := 0
	var count func(list []p4.Stmt)
	count = func(list []p4.Stmt) {
		for _, s := range list {
			n++
			switch x := s.(type) {
			case *p4.IfStmt:
				count(x.Then)
				count(x.Else)
			case *p4.IfApplyStmt:
				count(x.OnHit)
				count(x.OnMis)
			case *p4.SwitchApplyStmt:
				for _, c := range x.Cases {
					count(c.Body)
				}
				count(x.Default)
			}
		}
	}
	for _, b := range blocks(prog) {
		count(b.get())
	}
	return n
}

// reduction is one candidate shrinking edit. apply mutates the AST it was
// built over and returns the (possibly reduced) snapshot to pair with it.
type reduction struct {
	desc  string
	apply func() *tables.Snapshot
}

// listReductions enumerates candidate shrinking edits in a deterministic
// order. Each closure is bound to the given AST instance; callers re-parse
// per attempt.
func listReductions(prog *p4.Program, snap *tables.Snapshot) []reduction {
	var reds []reduction
	keep := func() *tables.Snapshot { return snap }
	add := func(desc string, apply func()) {
		reds = append(reds, reduction{desc: desc, apply: func() *tables.Snapshot { apply(); return keep() }})
	}

	// Statement-level shrinks: drop, or inline one branch of a
	// conditional.
	for _, b := range blocks(prog) {
		list := b.get()
		for i, s := range list {
			add(fmt.Sprintf("drop stmt %d in %s", i, b.where), func() {
				l := b.get()
				b.set(append(append([]p4.Stmt{}, l[:i]...), l[i+1:]...))
			})
			switch x := s.(type) {
			case *p4.IfStmt:
				add(fmt.Sprintf("inline then-branch of stmt %d in %s", i, b.where), func() {
					l := b.get()
					out := append([]p4.Stmt{}, l[:i]...)
					out = append(out, x.Then...)
					out = append(out, l[i+1:]...)
					b.set(out)
				})
			case *p4.IfApplyStmt:
				add(fmt.Sprintf("flatten if-apply of stmt %d in %s", i, b.where), func() {
					l := b.get()
					out := append([]p4.Stmt{}, l[:i]...)
					out = append(out, &p4.ApplyStmt{Table: x.Table})
					out = append(out, x.OnHit...)
					out = append(out, l[i+1:]...)
					b.set(out)
				})
			}
		}
	}

	// Parser shrinks: remove a non-start state (rewiring references to
	// accept), drop select cases, collapse selects to direct transitions.
	for _, pn := range sortedKeys(prog.Parsers) {
		par := prog.Parsers[pn]
		for _, sn := range stateOrder(par) {
			if sn == par.Start {
				continue
			}
			add(fmt.Sprintf("remove state %s.%s", pn, sn), func() {
				delete(par.States, sn)
				for _, other := range par.States {
					tr := other.Trans
					if tr == nil {
						continue
					}
					if tr.Target == sn {
						tr.Target = "accept"
					}
					for _, c := range tr.Cases {
						if c.Target == sn {
							c.Target = "accept"
						}
					}
				}
			})
		}
		for _, sn := range stateOrder(par) {
			st := par.States[sn]
			tr := st.Trans
			if tr == nil || tr.Kind != p4.TransSelect {
				continue
			}
			for ci, c := range tr.Cases {
				if len(tr.Cases) > 1 {
					add(fmt.Sprintf("drop select case %d in %s.%s", ci, pn, sn), func() {
						tr.Cases = append(append([]*p4.SelectCase{}, tr.Cases[:ci]...), tr.Cases[ci+1:]...)
					})
				}
				add(fmt.Sprintf("collapse select in %s.%s to %s", pn, sn, c.Target), func() {
					st.Trans = &p4.Transition{Kind: p4.TransDirect, Target: c.Target}
				})
			}
		}
	}

	// Control shrinks: drop unreferenced tables and actions, trim table
	// action lists, drop const entries.
	for _, cn := range sortedKeys(prog.Controls) {
		ctl := prog.Controls[cn]
		refs := tableRefs(ctl)
		for _, tn := range memberOrder(ctl) {
			if tbl, ok := ctl.Tables[tn]; ok {
				if !refs[tn] {
					add(fmt.Sprintf("drop unreferenced table %s.%s", cn, tn), func() {
						delete(ctl.Tables, tn)
					})
				}
				for ai, an := range tbl.Actions {
					if len(tbl.Actions) > 1 && an != tbl.DefaultAction {
						add(fmt.Sprintf("drop action %s from table %s.%s", an, cn, tn), func() {
							tbl.Actions = append(append([]string{}, tbl.Actions[:ai]...), tbl.Actions[ai+1:]...)
						})
					}
				}
				for ei := range tbl.ConstEntries {
					add(fmt.Sprintf("drop const entry %d in %s.%s", ei, cn, tn), func() {
						tbl.ConstEntries = append(append([]*p4.ConstEntry{}, tbl.ConstEntries[:ei]...), tbl.ConstEntries[ei+1:]...)
					})
				}
			}
		}
		used := actionRefs(ctl)
		for _, an := range memberOrder(ctl) {
			if _, ok := ctl.Actions[an]; ok && !used[an] {
				add(fmt.Sprintf("drop unreferenced action %s.%s", cn, an), func() {
					delete(ctl.Actions, an)
				})
			}
		}
	}

	// Snapshot shrinks: drop one entry.
	if snap != nil {
		for _, tn := range snap.Tables() {
			es := snap.Entries(tn)
			for ei := range es {
				reds = append(reds, reduction{
					desc: fmt.Sprintf("drop snapshot entry %d in %s", ei, tn),
					apply: func() *tables.Snapshot {
						out := snap.Clone()
						out.Remove(tn)
						for j, e2 := range es {
							if j != ei {
								out.Add(tn, e2)
							}
						}
						return out
					},
				})
			}
		}
	}
	return reds
}

// tableRefs reports which tables a control's apply block references.
func tableRefs(ctl *p4.Control) map[string]bool {
	out := map[string]bool{}
	var walk func(list []p4.Stmt)
	walk = func(list []p4.Stmt) {
		for _, s := range list {
			switch x := s.(type) {
			case *p4.ApplyStmt:
				out[x.Table] = true
			case *p4.IfApplyStmt:
				out[x.Table] = true
				walk(x.OnHit)
				walk(x.OnMis)
			case *p4.SwitchApplyStmt:
				out[x.Table] = true
				for _, c := range x.Cases {
					walk(c.Body)
				}
				walk(x.Default)
			case *p4.IfStmt:
				walk(x.Then)
				walk(x.Else)
			}
		}
	}
	walk(ctl.Apply)
	return out
}

// actionRefs reports which actions are referenced by any table or called
// directly from any statement in the control.
func actionRefs(ctl *p4.Control) map[string]bool {
	out := map[string]bool{}
	for _, tbl := range ctl.Tables {
		for _, an := range tbl.Actions {
			out[an] = true
		}
		if tbl.DefaultAction != "" {
			out[tbl.DefaultAction] = true
		}
		for _, e := range tbl.ConstEntries {
			out[e.Action] = true
		}
	}
	var walk func(list []p4.Stmt)
	walk = func(list []p4.Stmt) {
		for _, s := range list {
			switch x := s.(type) {
			case *p4.CallActionStmt:
				out[x.Action] = true
			case *p4.IfStmt:
				walk(x.Then)
				walk(x.Else)
			case *p4.IfApplyStmt:
				walk(x.OnHit)
				walk(x.OnMis)
			case *p4.SwitchApplyStmt:
				for _, c := range x.Cases {
					walk(c.Body)
				}
				walk(x.Default)
			}
		}
	}
	walk(ctl.Apply)
	for _, act := range ctl.Actions {
		walk(act.Body)
	}
	return out
}
