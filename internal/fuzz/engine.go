package fuzz

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"aquila/internal/genprog"
	"aquila/internal/obs"
	"aquila/internal/p4"
)

// Config parameterizes a fuzzing campaign.
type Config struct {
	// Seed makes the whole campaign deterministic: corpus scheduling,
	// mutation choices and generated base programs all derive from it.
	Seed int64
	// Iters bounds the number of fuzzing iterations (mutant executions).
	Iters int
	// Deadline, when non-zero, stops the campaign after this duration even
	// if Iters has not been reached. Deadline-limited campaigns trade the
	// iteration-count determinism away; tests use Iters only.
	Deadline time.Duration
	// TargetBug switches the engine into bug-rediscovery mode: the encoder
	// under test carries this injected historical bug (see
	// encode.Options.InjectEncoderBug) and the campaign stops at the first
	// input whose refinement check exposes it.
	TargetBug string
	// SeedPrograms is how many generator configurations seed the corpus
	// (default 4).
	SeedPrograms int
	// MaxMutations caps the mutation count applied per derived input
	// (default 3).
	MaxMutations int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// MinimizeDivergences shrinks each divergent input before reporting.
	MinimizeDivergences bool
	// Thorough runs the full engine matrix and counterexample replay on
	// every mutant. By default those deep oracles run only on mutants with
	// new structural coverage (the refinement oracle still runs on every
	// mutant), which keeps long campaigns affordable: repeated shapes cost
	// one refinement proof, not eight verifier runs.
	Thorough bool
}

// Result summarizes a campaign.
type Result struct {
	Iters    int // mutants executed through the oracles
	Rejected int // mutants the type checker or pipeline refused
	// CoveragePoints is the number of distinct coverage signatures seen;
	// CorpusSize the number of inputs retained for further mutation.
	CoveragePoints int
	CorpusSize     int
	Divergences    []*Divergence
	// FoundAtIter is the 1-based iteration at which TargetBug was exposed
	// (0 when not in rediscovery mode or not found).
	FoundAtIter int
	Elapsed     time.Duration
}

// corpusEntry is one retained input with its scheduling energy.
type corpusEntry struct {
	in     *Input
	energy int
}

// Engine is the coverage-guided differential fuzzer.
type Engine struct {
	cfg      Config
	rng      *rand.Rand
	mut      *Mutator
	corpus   []*corpusEntry
	seen     map[string]bool // coverage signatures
	rejected int
}

// New returns an engine for the given campaign configuration.
func New(cfg Config) *Engine {
	if cfg.SeedPrograms <= 0 {
		cfg.SeedPrograms = 4
	}
	if cfg.MaxMutations <= 0 {
		cfg.MaxMutations = 3
	}
	return &Engine{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		mut:  NewMutator(cfg.Seed ^ 0x5eed),
		seen: map[string]bool{},
	}
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Log != nil {
		fmt.Fprintf(e.cfg.Log, format+"\n", args...)
	}
}

// seedCorpus populates the corpus from generator configurations derived
// from the campaign seed. In rediscovery mode snapshots are withheld so
// tables run under unknown entries — the regime the "ignore-defaultonly"
// bug lives in.
func (e *Engine) seedCorpus() {
	for i := 0; i < e.cfg.SeedPrograms; i++ {
		gseed := e.cfg.Seed*31 + int64(i) + 1
		cfg := genprog.RandomConfig(gseed)
		bm := genprog.Assemble(cfg)
		in := &Input{Source: bm.Source, Calls: bm.Calls, Seed: gseed}
		if _, err := p4.ParseAndCheck(bm.Name, bm.Source); err != nil {
			continue // generator bug; skip rather than abort the campaign
		}
		e.corpus = append(e.corpus, &corpusEntry{in: in, energy: 4})
	}
}

// pick selects a corpus entry weighted by energy.
func (e *Engine) pick() *corpusEntry {
	total := 0
	for _, c := range e.corpus {
		total += c.energy
	}
	n := e.rng.Intn(total)
	for _, c := range e.corpus {
		n -= c.energy
		if n < 0 {
			return c
		}
	}
	return e.corpus[len(e.corpus)-1]
}

// Run executes the campaign.
func (e *Engine) Run() (*Result, error) {
	start := time.Now()
	e.seedCorpus()
	if len(e.corpus) == 0 {
		return nil, fmt.Errorf("fuzz: no seed inputs survived generation")
	}
	res := &Result{}
	for iter := 1; iter <= e.cfg.Iters; iter++ {
		if e.cfg.Deadline > 0 && time.Since(start) > e.cfg.Deadline {
			break
		}
		parent := e.pick()
		in, prog, ok := e.deriveMutant(parent.in)
		if !ok {
			res.Iters++
			continue
		}

		o := &obs.Obs{Metrics: obs.NewRegistry()}
		divs, accepted := e.refinementOracle(in, prog, o)
		res.Iters++
		if !accepted {
			continue
		}
		// Deep oracles (engine matrix + counterexample replay) run when the
		// refinement proof's coverage signature is new, or always under
		// Thorough.
		sig := obs.Signature(o.Metrics.Snapshot())
		if e.cfg.Thorough || (sig != "" && !e.seen[sig]) {
			divs = append(divs, e.deepOracles(in, prog, o)...)
			sig = obs.Signature(o.Metrics.Snapshot())
		}
		if sig != "" && !e.seen[sig] {
			e.seen[sig] = true
			// New structural coverage: retain the mutant and feed energy
			// back to the parent that produced it.
			e.corpus = append(e.corpus, &corpusEntry{in: in, energy: 4})
			if parent.energy < 16 {
				parent.energy++
			}
			e.logf("iter %d: new coverage (%d points, corpus %d)", iter, len(e.seen), len(e.corpus))
		} else if parent.energy > 1 {
			parent.energy--
		}

		if len(divs) > 0 {
			for _, d := range divs {
				e.logf("iter %d: DIVERGENCE %s", iter, d)
				if e.cfg.MinimizeDivergences {
					d.Input = e.Minimize(d)
				}
			}
			res.Divergences = append(res.Divergences, divs...)
			if e.cfg.TargetBug != "" {
				res.FoundAtIter = iter
				break
			}
		}
	}
	res.Rejected = e.rejected
	res.CoveragePoints = len(e.seen)
	res.CorpusSize = len(e.corpus)
	res.Elapsed = time.Since(start)
	return res, nil
}

// deriveMutant clones a parent input (clone = re-parse of its printed
// source), applies 1..MaxMutations AST edits plus an occasional snapshot
// edit, and re-checks the result. Mutants that no longer type-check are
// rejected.
func (e *Engine) deriveMutant(parent *Input) (*Input, *p4.Program, bool) {
	prog, err := p4.ParseAndCheck("fuzz-parent", parent.Source)
	if err != nil {
		e.rejected++
		return nil, nil, false
	}
	n := 1 + e.rng.Intn(e.cfg.MaxMutations)
	muts := e.mut.Mutate(prog, n)
	snap := parent.Snap
	if snap != nil && e.rng.Intn(4) == 0 {
		var smuts []string
		snap, smuts = e.mut.MutateSnapshot(snap, 1)
		muts = append(muts, smuts...)
	}
	src := Print(prog)
	checked, err := p4.ParseAndCheck("fuzz-mutant", src)
	if err != nil {
		e.rejected++
		return nil, nil, false
	}
	in := &Input{
		Source: src,
		Snap:   snap,
		Calls:  parent.Calls,
		Seed:   parent.Seed,
		Muts:   append(append([]string{}, parent.Muts...), muts...),
	}
	return in, checked, true
}
