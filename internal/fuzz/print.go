// Package fuzz is Aquila's coverage-guided differential fuzzing engine
// (the continuous form of the paper's §6 self-validation): it mutates
// generated P4lite programs at the AST level, steers mutation energy by
// structural coverage of the encoder read from the observability
// registry, and checks every input against three oracles — refinement
// against the independent interpreter, verdict/report agreement across
// the engine matrix, and counterexample replay through the path-based
// symbolic executor. Divergences are shrunk by a delta-debugging
// minimizer and emitted as reproducer test files.
package fuzz

import (
	"fmt"
	"sort"
	"strings"

	"aquila/internal/p4"
)

// Print renders a parsed (and type-checked) P4lite program back into
// parseable source. It is the inverse of p4.ParseAndCheck for the subset
// of the language the program actually uses: Print(p) must re-parse to a
// structurally identical program, which the round-trip test pins. The
// implicitly declared std_meta instance is skipped; const declarations
// are printed value-substituted at their use sites.
func Print(prog *p4.Program) string {
	pr := &printer{prog: prog}
	var b strings.Builder

	for _, name := range sortedKeys(prog.Headers) {
		h := prog.Headers[name]
		fmt.Fprintf(&b, "header %s {", name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, " bit<%d> %s;", f.Width, f.Name)
		}
		b.WriteString(" }\n")
	}
	for _, name := range sortedKeys(prog.Structs) {
		if name == "std_meta_t" {
			continue
		}
		h := prog.Structs[name]
		fmt.Fprintf(&b, "struct %s {", name)
		for _, f := range h.Fields {
			fmt.Fprintf(&b, " bit<%d> %s;", f.Width, f.Name)
		}
		b.WriteString(" }\n")
	}
	for _, inst := range prog.Instances {
		if inst.Name == p4.StdMetaInstance {
			continue
		}
		fmt.Fprintf(&b, "%s %s;\n", inst.TypeName, inst.Name)
	}
	for _, name := range sortedKeys(prog.Registers) {
		r := prog.Registers[name]
		kind := r.Kind
		if kind == "" {
			kind = "register"
		}
		fmt.Fprintf(&b, "%s<bit<%d>>(%d) %s;\n", kind, r.Width, r.Size, name)
	}
	for _, name := range sortedKeys(prog.Parsers) {
		pr.parser(&b, prog.Parsers[name])
	}
	for _, name := range sortedKeys(prog.Controls) {
		pr.control(&b, prog.Controls[name])
	}
	for _, name := range sortedKeys(prog.Deparsers) {
		dp := prog.Deparsers[name]
		fmt.Fprintf(&b, "deparser %s {\n", name)
		pr.stmts(&b, dp.Stmts, "\t")
		b.WriteString("}\n")
	}
	for _, name := range sortedKeys(prog.Pipelines) {
		pl := prog.Pipelines[name]
		fmt.Fprintf(&b, "pipeline %s {", name)
		if pl.Parser != "" {
			fmt.Fprintf(&b, " parser = %s;", pl.Parser)
		}
		if pl.Control != "" {
			fmt.Fprintf(&b, " control = %s;", pl.Control)
		}
		if pl.Deparser != "" {
			fmt.Fprintf(&b, " deparser = %s;", pl.Deparser)
		}
		if pl.Recirc > 0 {
			fmt.Fprintf(&b, " recirc = %d;", pl.Recirc)
		}
		b.WriteString(" }\n")
	}
	return b.String()
}

type printer struct {
	prog *p4.Program
}

func (pr *printer) parser(b *strings.Builder, p *p4.Parser) {
	fmt.Fprintf(b, "parser %s {\n", p.Name)
	for _, sn := range stateOrder(p) {
		st := p.States[sn]
		fmt.Fprintf(b, "\tstate %s {\n", st.Name)
		pr.stmts(b, st.Stmts, "\t\t")
		if st.Trans != nil {
			switch st.Trans.Kind {
			case p4.TransDirect:
				fmt.Fprintf(b, "\t\ttransition %s;\n", st.Trans.Target)
			case p4.TransSelect:
				fmt.Fprintf(b, "\t\ttransition select(%s) {\n", pr.expr(st.Trans.Expr))
				for _, c := range st.Trans.Cases {
					switch {
					case c.IsDefault:
						fmt.Fprintf(b, "\t\t\tdefault: %s;\n", c.Target)
					case c.HasMask:
						fmt.Fprintf(b, "\t\t\t%d &&& %d: %s;\n", c.Val, c.Mask, c.Target)
					default:
						fmt.Fprintf(b, "\t\t\t%d: %s;\n", c.Val, c.Target)
					}
				}
				b.WriteString("\t\t}\n")
			}
		}
		b.WriteString("\t}\n")
	}
	b.WriteString("}\n")
}

// stateOrder returns the parser's states in declaration order, falling
// back to start-first-then-sorted when Order is stale (mutation may add
// or remove states).
func stateOrder(p *p4.Parser) []string {
	seen := map[string]bool{}
	var out []string
	for _, sn := range p.Order {
		if _, ok := p.States[sn]; ok && !seen[sn] {
			seen[sn] = true
			out = append(out, sn)
		}
	}
	var rest []string
	for sn := range p.States {
		if !seen[sn] {
			rest = append(rest, sn)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func (pr *printer) control(b *strings.Builder, ctl *p4.Control) {
	fmt.Fprintf(b, "control %s {\n", ctl.Name)
	for _, name := range memberOrder(ctl) {
		if act, ok := ctl.Actions[name]; ok {
			fmt.Fprintf(b, "\taction %s(", name)
			for i, prm := range act.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "bit<%d> %s", prm.Width, prm.Name)
			}
			b.WriteString(") {\n")
			pr.stmts(b, act.Body, "\t\t")
			b.WriteString("\t}\n")
			continue
		}
		tbl := ctl.Tables[name]
		fmt.Fprintf(b, "\ttable %s {\n", name)
		if len(tbl.Keys) > 0 {
			b.WriteString("\t\tkey = {")
			for _, k := range tbl.Keys {
				fmt.Fprintf(b, " %s : %s;", pr.expr(k.Expr), k.Kind)
			}
			b.WriteString(" }\n")
		}
		b.WriteString("\t\tactions = {")
		for _, an := range tbl.Actions {
			if tbl.DefaultOnly[an] {
				fmt.Fprintf(b, " @defaultonly %s;", an)
			} else {
				fmt.Fprintf(b, " %s;", an)
			}
		}
		b.WriteString(" }\n")
		if tbl.DefaultAction != "" {
			fmt.Fprintf(b, "\t\tdefault_action = %s", tbl.DefaultAction)
			if len(tbl.DefaultArgs) > 0 {
				b.WriteString("(")
				for i, a := range tbl.DefaultArgs {
					if i > 0 {
						b.WriteString(", ")
					}
					b.WriteString(pr.expr(a))
				}
				b.WriteString(")")
			}
			b.WriteString(";\n")
		}
		if tbl.Size > 0 {
			fmt.Fprintf(b, "\t\tsize = %d;\n", tbl.Size)
		}
		if len(tbl.ConstEntries) > 0 {
			b.WriteString("\t\tentries = {\n")
			for _, e := range tbl.ConstEntries {
				b.WriteString("\t\t\t(")
				for i, v := range e.KeyVals {
					if i > 0 {
						b.WriteString(", ")
					}
					switch {
					case e.KeyMasks[i] == 0:
						b.WriteString("_")
					case e.KeyMasks[i] == ^uint64(0):
						fmt.Fprintf(b, "%d", v)
					default:
						fmt.Fprintf(b, "%d &&& %d", v, e.KeyMasks[i])
					}
				}
				fmt.Fprintf(b, ") : %s", e.Action)
				if len(e.Args) > 0 {
					b.WriteString("(")
					for i, a := range e.Args {
						if i > 0 {
							b.WriteString(", ")
						}
						fmt.Fprintf(b, "%d", a)
					}
					b.WriteString(")")
				}
				b.WriteString(";\n")
			}
			b.WriteString("\t\t}\n")
		}
		b.WriteString("\t}\n")
	}
	b.WriteString("\tapply {\n")
	pr.stmts(b, ctl.Apply, "\t\t")
	b.WriteString("\t}\n}\n")
}

// memberOrder returns the control's actions and tables in declaration
// order, appending any members a mutation added outside Order.
func memberOrder(ctl *p4.Control) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range ctl.Order {
		_, isAct := ctl.Actions[n]
		_, isTbl := ctl.Tables[n]
		if (isAct || isTbl) && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	var rest []string
	for n := range ctl.Actions {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	for n := range ctl.Tables {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

func (pr *printer) stmts(b *strings.Builder, list []p4.Stmt, in string) {
	for _, s := range list {
		pr.stmt(b, s, in)
	}
}

func (pr *printer) stmt(b *strings.Builder, s p4.Stmt, in string) {
	switch x := s.(type) {
	case *p4.AssignStmt:
		fmt.Fprintf(b, "%s%s = %s;\n", in, pr.expr(x.LHS), pr.expr(x.RHS))
	case *p4.ExtractStmt:
		fmt.Fprintf(b, "%sextract(%s);\n", in, x.Header)
	case *p4.SetValidStmt:
		if x.Valid {
			fmt.Fprintf(b, "%s%s.setValid();\n", in, x.Header)
		} else {
			fmt.Fprintf(b, "%s%s.setInvalid();\n", in, x.Header)
		}
	case *p4.IfStmt:
		fmt.Fprintf(b, "%sif (%s) {\n", in, pr.expr(x.Cond))
		pr.stmts(b, x.Then, in+"\t")
		if len(x.Else) > 0 {
			fmt.Fprintf(b, "%s} else {\n", in)
			pr.stmts(b, x.Else, in+"\t")
		}
		fmt.Fprintf(b, "%s}\n", in)
	case *p4.ApplyStmt:
		fmt.Fprintf(b, "%s%s.apply();\n", in, x.Table)
	case *p4.IfApplyStmt:
		fmt.Fprintf(b, "%sif (%s.apply().hit) {\n", in, x.Table)
		pr.stmts(b, x.OnHit, in+"\t")
		if len(x.OnMis) > 0 {
			fmt.Fprintf(b, "%s} else {\n", in)
			pr.stmts(b, x.OnMis, in+"\t")
		}
		fmt.Fprintf(b, "%s}\n", in)
	case *p4.SwitchApplyStmt:
		fmt.Fprintf(b, "%sswitch (%s.apply().action_run) {\n", in, x.Table)
		for _, c := range x.Cases {
			fmt.Fprintf(b, "%s%s: {\n", in+"\t", c.Action)
			pr.stmts(b, c.Body, in+"\t\t")
			fmt.Fprintf(b, "%s}\n", in+"\t")
		}
		if len(x.Default) > 0 {
			fmt.Fprintf(b, "%sdefault: {\n", in+"\t")
			pr.stmts(b, x.Default, in+"\t\t")
			fmt.Fprintf(b, "%s}\n", in+"\t")
		}
		fmt.Fprintf(b, "%s}\n", in)
	case *p4.CallActionStmt:
		fmt.Fprintf(b, "%s%s(", in, x.Action)
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(pr.expr(a))
		}
		b.WriteString(");\n")
	case *p4.RegReadStmt:
		fmt.Fprintf(b, "%s%s.read(%s, %s);\n", in, x.Reg, pr.expr(x.Dst), pr.expr(x.Index))
	case *p4.RegWriteStmt:
		fmt.Fprintf(b, "%s%s.write(%s, %s);\n", in, x.Reg, pr.expr(x.Index), pr.expr(x.Val))
	case *p4.CountStmt:
		fmt.Fprintf(b, "%s%s.count(%s);\n", in, x.Counter, pr.expr(x.Index))
	case *p4.ExecuteMeterStmt:
		fmt.Fprintf(b, "%s%s.execute_meter(%s, %s);\n", in, x.Meter, pr.expr(x.Index), pr.expr(x.Dst))
	case *p4.HashStmt:
		fmt.Fprintf(b, "%shash(%s", in, pr.expr(x.Dst))
		for _, a := range x.Inputs {
			fmt.Fprintf(b, ", %s", pr.expr(a))
		}
		b.WriteString(");\n")
	case *p4.PrimitiveStmt:
		fmt.Fprintf(b, "%s%s();\n", in, x.Name)
	case *p4.EmitStmt:
		fmt.Fprintf(b, "%semit(%s);\n", in, x.Header)
	case *p4.UpdateChecksumStmt:
		fmt.Fprintf(b, "%supdate_checksum(%s", in, pr.expr(x.Dst))
		for _, a := range x.Inputs {
			fmt.Fprintf(b, ", %s", pr.expr(a))
		}
		b.WriteString(");\n")
	default:
		fmt.Fprintf(b, "%s/* unprintable statement %T */\n", in, s)
	}
}

// expr renders an expression. Const references are value-substituted so
// the printed program needs no const declarations (whose widths the AST
// does not retain).
func (pr *printer) expr(e p4.Expr) string {
	switch x := e.(type) {
	case *p4.IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *p4.VarRef:
		if v, ok := pr.prog.Consts[x.Name]; ok {
			return fmt.Sprintf("%d", v)
		}
		return x.Name
	case *p4.FieldRef:
		return x.Instance + "." + x.Field
	case *p4.IsValidExpr:
		return x.Instance + ".isValid()"
	case *p4.UnaryExpr:
		return x.Op + "(" + pr.expr(x.X) + ")"
	case *p4.BinaryExpr:
		return "(" + pr.expr(x.X) + " " + x.Op + " " + pr.expr(x.Y) + ")"
	case *p4.CastExpr:
		return fmt.Sprintf("(bit<%d>)(%s)", x.Width, pr.expr(x.X))
	case *p4.LookaheadExpr:
		return fmt.Sprintf("lookahead<bit<%d>>()", x.Width)
	case *p4.SliceExpr:
		return fmt.Sprintf("(%s)[%d:%d]", pr.expr(x.X), x.Hi, x.Lo)
	default:
		return e.String()
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
