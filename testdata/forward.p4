// forward.p4 — the paper's Figure 6 subject program.
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
header udp_t { bit<16> src_port; bit<16> dst_port; }
struct ig_md_t { bit<1> redirected; }

ethernet_t ethernet;
ipv4_t ipv4;
tcp_t tcp;
udp_t udp;
ig_md_t ig_md;

parser IngressParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			17: parse_udp;
			default: accept;
		}
	}
	state parse_tcp { extract(tcp); transition accept; }
	state parse_udp { extract(udp); transition accept; }
}

control Ingress {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action rewrite() { ipv4.dst_ip = 10.0.0.2; ig_md.redirected = 1; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { rewrite; send; a_drop; }
		default_action = send(1);
	}
	apply {
		if (ipv4.isValid()) { fwd.apply(); }
	}
}

deparser IngressDeparser { emit(ethernet); emit(ipv4); emit(tcp); emit(udp); }

pipeline ingress_pipeline {
	parser = IngressParser;
	control = Ingress;
	deparser = IngressDeparser;
}
