package aquila

import (
	"os"
	"strings"
	"testing"
)

var osWriteFile = os.WriteFile

const demoProgram = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
ethernet_t eth;
ipv4_t ipv4;

parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}
control Ing {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { send; a_drop; }
		default_action = a_drop;
	}
	apply { if (ipv4.isValid()) { fwd.apply(); } }
}
deparser D { emit(eth); emit(ipv4); }
pipeline pl { parser = P; control = Ing; deparser = D; }
`

const demoSpec = `
assumption { init {
	pkt.$order == <eth ipv4>;
	pkt.eth.etherType == 0x0800;
	pkt.ipv4.dst_ip == 10.0.0.1;
} }
assertion { out = { std_meta.egress_spec == 3; } }
program {
	assume(init);
	call(pl);
	assert(out);
}
`

const demoEntries = `
table Ing.fwd {
  10.0.0.1 -> send(3)
}
`

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := ParseProgram("demo", demoProgram)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(demoSpec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ParseSnapshot(demoEntries)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(prog, snap, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("spec must hold:\n%s", rep.String())
	}

	// Break the entry; verification fails and localization blames it.
	badSnap := NewSnapshot()
	bad, err := ParseSnapshot("table Ing.fwd {\n 10.0.0.9 -> send(3)\n}")
	if err != nil {
		t.Fatal(err)
	}
	_ = badSnap
	rep2, err := Verify(prog, bad, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Holds {
		t.Fatal("wrong entry must violate the spec")
	}
	loc, err := Localize(prog, bad, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loc.Kind != BugTableEntry {
		t.Fatalf("localization kind = %v, want table entry:\n%s", loc.Kind, loc)
	}

	// Self-validation of the encoder on this program.
	val, err := SelfValidate(prog, snap, []string{"pl"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !val.Equivalent {
		t.Fatalf("self-validation must pass:\n%s", val)
	}
}

func TestFacadeFileLoading(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p := write("prog.p4", demoProgram)
	s := write("spec.lpi", demoSpec)
	e := write("entries.txt", demoEntries)
	if _, err := LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(s); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(e); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProgram(dir + "/missing.p4"); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := LoadSpec(dir + "/missing.lpi"); err == nil {
		t.Fatal("missing file must error")
	}
	if _, err := LoadSnapshot(dir + "/missing.txt"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestSpecLoCMetric(t *testing.T) {
	if n := SpecLoC(demoSpec); n < 10 || n > 20 {
		t.Fatalf("SpecLoC = %d", n)
	}
	if !strings.Contains(demoSpec, "pkt.$order") {
		t.Fatal("sanity")
	}
}

func writeFile(path, content string) error {
	return osWriteFile(path, []byte(content), 0o644)
}

func TestInferUndefinedBehaviorSpec(t *testing.T) {
	prog, err := ParseProgram("demo", demoProgram)
	if err != nil {
		t.Fatal(err)
	}
	src, spec, err := InferUndefinedBehaviorSpec(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "applied(Ing.fwd)") {
		t.Fatalf("inferred spec missing table property:\n%s", src)
	}
	// The demo program guards fwd with isValid, so the inferred spec holds.
	rep, err := Verify(prog, nil, spec, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Fatalf("guarded demo program must satisfy the inferred spec:\n%s", rep.String())
	}
	// Remove the guard: the inferred spec must catch the bug.
	broken := strings.Replace(demoProgram, "if (ipv4.isValid()) { fwd.apply(); }", "fwd.apply();", 1)
	prog2, err := ParseProgram("demo2", broken)
	if err != nil {
		t.Fatal(err)
	}
	_, spec2, err := InferUndefinedBehaviorSpec(prog2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Verify(prog2, nil, spec2, Options{FindAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Holds {
		t.Fatal("unguarded apply must violate the inferred spec")
	}
	if len(rep2.Blocklist()) == 0 {
		t.Fatal("the violation should produce blocklist entries (§2)")
	}
}
