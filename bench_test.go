package aquila

// bench_test.go hosts one testing.B benchmark per table and figure of the
// paper's evaluation (run them with `go test -bench=. -benchmem`), plus
// ablation benches for the design choices DESIGN.md calls out. The full
// parameter sweeps live in cmd/aquila-bench; these benches use scaled-down
// workloads so a complete -bench=. run stays in CI territory, while
// preserving every comparison's shape.

import (
	"fmt"
	"io"
	"testing"

	"aquila/internal/bench"
	"aquila/internal/encode"
	"aquila/internal/genprog"
	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/progs"
	"aquila/internal/smt"
	"aquila/internal/verify"
)

// BenchmarkTable1_PropertyMatrix runs the full Table 1 property-coverage
// scenario suite.
func BenchmarkTable1_PropertyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		for _, r := range rows {
			if !r.Supported {
				b.Fatalf("%s/%s unsupported: %v", r.Part, r.Property, r.Err)
			}
		}
	}
}

// BenchmarkTable2_SpecSize measures the specification-size comparison.
func BenchmarkTable2_SpecSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("want 3 scenarios")
		}
	}
}

// BenchmarkTable3 verifies the hand-written suite with each tool — the
// per-tool inner benches expose the time asymmetry Table 3 reports.
func BenchmarkTable3(b *testing.B) {
	suite := progs.HandWrittenSuite()
	for _, tool := range []bench.Tool{bench.ToolAquila, bench.ToolP4V, bench.ToolVera} {
		b.Run(string(tool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, bm := range suite {
					out, err := bench.RunTool(bm, tool, bench.QuickLimits)
					if err != nil {
						b.Fatal(err)
					}
					if out.Fail == "" && out.Bugs == 0 {
						b.Fatalf("%s/%s found no seeded bug", bm.Name, tool)
					}
				}
			}
		})
	}
}

// BenchmarkTable3_ProductionScale runs one production-shaped program per
// tool, showing the completes-vs-explodes split of Table 3's lower half.
func BenchmarkTable3_ProductionScale(b *testing.B) {
	cfg := genprog.Config{Name: "big", Pipes: 2, ParserStates: 40, Tables: 60, ActionsPerTable: 3, SeedBug: true}
	bm := genprog.Assemble(cfg)
	lim := bench.Limits{TreeCap: 100_000, MaxPaths: 20_000, Budget: 20_000_000}
	for _, tool := range []bench.Tool{bench.ToolAquila, bench.ToolP4V, bench.ToolVera} {
		b.Run(string(tool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := bench.RunTool(bm, tool, lim)
				if err != nil {
					b.Fatal(err)
				}
				switch tool {
				case bench.ToolAquila:
					if out.Fail != "" {
						b.Fatalf("Aquila must complete, got %s", out.Fail)
					}
				default:
					if out.Fail == "" {
						b.Fatalf("%s should exceed its budget at this scale", tool)
					}
				}
			}
		})
	}
}

// BenchmarkTable4_Localization runs the three bug kinds on the small
// switch-T.
func BenchmarkTable4_Localization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4([]string{"small"})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Found {
				b.Fatalf("%s/%s: culprit not found", r.Scale, r.Bug)
			}
		}
	}
}

// BenchmarkFig11a_ProgramScaling sweeps chained switch-T copies.
func BenchmarkFig11a_ProgramScaling(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := genprog.SwitchT("small")
			cfg.TTLChain = false
			bm := genprog.AssembleChain(cfg, k)
			prog, err := bm.Parse()
			if err != nil {
				b.Fatal(err)
			}
			spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := verify.Run(prog, nil, spec, verify.Options{FindAll: true})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Holds {
					b.Fatal("clean chain must verify")
				}
			}
		})
	}
}

// BenchmarkFig11b_TableEntryScaling sweeps entry counts per table mode.
func BenchmarkFig11b_TableEntryScaling(b *testing.B) {
	cfg := genprog.SwitchT("small")
	cfg.TTLChain = false
	bm := genprog.Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{128, 512, 1024} {
		snap := genprog.BigTableSnapshot(cfg, n)
		spec, err := lpi.Parse(genprog.BigTableSpec(cfg, bm.Calls, uint64(0x0A000000+n/2), 0))
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []struct {
			name string
			mode encode.TableMode
		}{{"Naive", encode.TableNaive}, {"ABV", encode.TableABVLinear}, {"ABVOpt", encode.TableABVTree}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := verify.Run(prog, snap, spec, verify.Options{
						FindAll: true, Encode: encode.Options{Table: m.mode}})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Holds {
						b.Fatal("lookup property must hold")
					}
				}
			})
		}
	}
}

// ---- ablation benches (DESIGN.md "key internal design choices") ----

// BenchmarkAblation_SequentialVsTree compares the §4.1 sequential parser
// encoding with the naive tree expansion on a branching-heavy parser.
func BenchmarkAblation_SequentialVsTree(b *testing.B) {
	cfg := genprog.Config{Name: "abl", Pipes: 1, ParserStates: 15, Tables: 8}
	bm := genprog.Assemble(cfg)
	prog, err := bm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		mode encode.ParserMode
	}{{"Sequential", encode.ParserSequential}, {"Tree", encode.ParserTree}} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := verify.Run(prog, nil, spec, verify.Options{
					FindAll: true, Encode: encode.Options{Parser: m.mode, TreeCap: 8 << 20}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_PacketKVvsBitvector compares the §4.2 key-value packet
// model against the monolithic bit-vector baseline.
func BenchmarkAblation_PacketKVvsBitvector(b *testing.B) {
	prog, err := ParseProgram("pkt", demoProgram)
	if err != nil {
		b.Fatal(err)
	}
	// A packet-model-neutral property: parsed field equals its own value.
	spec, err := ParseSpec(`
assertion { a = { if (valid(ipv4)) ipv4.ttl == ipv4.ttl; } }
program { call(pl); assert(a); }`)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name string
		mode encode.PacketMode
	}{{"KV", encode.PacketKV}, {"Bitvector", encode.PacketBitvector}} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := verify.Run(prog, nil, spec, verify.Options{
					FindAll: true, Encode: encode.Options{Packet: m.mode}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_FindFirstVsFindAll measures the §5.1 assertion
// labelling trade-off the paper reports ("higher memory when finding the
// first bug, longer time finding all").
func BenchmarkAblation_FindFirstVsFindAll(b *testing.B) {
	bm := progs.HandWrittenSuite()[0] // Simple Router
	prog, err := bm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []struct {
		name    string
		findAll bool
	}{{"First", false}, {"All", true}} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := verify.Run(prog, nil, spec, verify.Options{FindAll: m.findAll}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the observability tax on a full find-all
// verification of the DC Gateway: instrumented-but-disabled (nil sinks —
// every hook is a nil check), fully enabled (tracer + registry + JSONL
// log to io.Discard), and the full flight recorder on top (per-check
// histograms fold into the registry and a heartbeat ring samples every
// 64th conflict). DESIGN.md budgets < 3% for the disabled path and
// documents the enabled paths at < 5%.
func BenchmarkObsOverhead(b *testing.B) {
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, sink *obs.Obs) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			rep, err := verify.Run(prog, nil, spec, verify.Options{
				FindAll: true, Parallel: 1, Obs: sink})
			if err != nil {
				b.Fatal(err)
			}
			if rep.Stats.Assertions == 0 {
				b.Fatal("no assertions verified")
			}
		}
	}
	b.Run("Disabled", func(b *testing.B) { run(b, nil) })
	b.Run("Enabled", func(b *testing.B) {
		run(b, &obs.Obs{
			Tracer:  obs.NewTracer(),
			Metrics: obs.NewRegistry(),
			Log:     obs.NewLogger(io.Discard),
		})
	})
	b.Run("FlightRecorder", func(b *testing.B) {
		sink := &obs.Obs{
			Tracer:   obs.NewTracer(),
			Metrics:  obs.NewRegistry(),
			Log:      obs.NewLogger(io.Discard),
			Progress: obs.NewProgressRing(256, 64),
		}
		run(b, sink)
		if len(sink.Metrics.Histograms()) == 0 {
			b.Fatal("flight run folded no histograms")
		}
		if sink.Progress.Seq() == 0 {
			b.Fatal("flight run published no heartbeat samples")
		}
	})
}

// BenchmarkVerifyDCGateway_Allocs is the allocation benchmark CI gates
// on: an end-to-end find-all verification of the DC Gateway under the
// shipping memory-lean configuration (serial, preprocessing, slicing,
// streaming release). Run with -benchmem; the allocs/op column is the
// number the term-arena / flat-clause-DB work exists to shrink, and the
// scale campaign's CompareScale holds it within 20% of the checked-in
// BENCH_scale.json anchor row.
func BenchmarkVerifyDCGateway_Allocs(b *testing.B) {
	b.ReportAllocs()
	bm := progs.DCGatewayBench()
	prog, err := bm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	spec, err := lpi.Parse(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Run(prog, nil, spec, verify.Options{
			FindAll: true, Parallel: 1, Preprocess: true, Slice: true, Stream: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) == 0 {
			b.Fatal("no bugs on a benchmark with seeded violations")
		}
	}
}

// BenchmarkSMT_Interning exercises the hash-consing micro-path: a mix of
// fresh constructions (map miss + insert) and re-constructions of existing
// terms (map hit), the dominant operation of GCL encoding.
func BenchmarkSMT_Interning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := smt.NewCtx()
		vars := make([]*smt.Term, 16)
		for j := range vars {
			vars[j] = ctx.Var(fmt.Sprintf("v%d", j), 32)
		}
		acc := ctx.BV(0, 32)
		for j := 0; j < 256; j++ {
			v := vars[j%len(vars)]
			acc = ctx.BVAdd(acc, ctx.BVXor(v, ctx.BV(uint64(j), 32)))
			// Re-construction of an existing term: pure lookup.
			ctx.BVXor(v, ctx.BV(uint64(j), 32))
			ctx.Extract(acc, 15, 0)
		}
		ctx.Eq(acc, ctx.BV(42, 32))
	}
}

// BenchmarkSolver_BitBlast exercises the SMT substrate directly: a
// register-chained arithmetic equation per iteration.
func BenchmarkSolver_BitBlast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := smt.NewCtx()
		s := smt.NewSolver(ctx)
		x := ctx.Var("x", 32)
		y := ctx.Var("y", 32)
		s.Assert(ctx.Eq(ctx.BVAdd(ctx.BVMul(x, ctx.BV(3, 32)), y), ctx.BV(99, 32)))
		s.Assert(ctx.Ult(y, ctx.BV(3, 32)))
		if s.Check() != smt.Sat {
			b.Fatal("expected sat")
		}
	}
}
