// Command aquila-localize runs Aquila's automatic bug localization (§5 of
// the paper) on a program whose specification is violated: it reports
// either the minimal set of tables whose entries can fix the violation or
// the candidate program locations (action + variable) whose change can.
//
// Usage:
//
//	aquila-localize -spec spec.lpi [-p4 prog.p4] [-entries snap.txt]
//	                [-budget N] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"aquila"
)

func main() {
	var (
		p4Path   = flag.String("p4", "", "P4lite program (overrides the spec's config path)")
		specPath = flag.String("spec", "", "LPI specification file (required)")
		entries  = flag.String("entries", "", "table-entry snapshot file")
		budget   = flag.Int64("budget", 0, "SAT conflict budget per query (0: unlimited)")
		parallel = flag.Int("parallel", 0, fmt.Sprintf("worker goroutines for localization re-checks (0: GOMAXPROCS, currently %d; 1: serial)", runtime.GOMAXPROCS(0)))
	)
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := aquila.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	progPath := *p4Path
	if progPath == "" {
		progPath = spec.Config["path"]
		if progPath != "" && !filepath.IsAbs(progPath) {
			progPath = filepath.Join(filepath.Dir(*specPath), progPath)
		}
	}
	if progPath == "" {
		fatal(fmt.Errorf("no program: pass -p4 or set `config { path = ...; }` in the spec"))
	}
	prog, err := aquila.LoadProgram(progPath)
	if err != nil {
		fatal(err)
	}
	var snap *aquila.Snapshot
	if *entries != "" {
		snap, err = aquila.LoadSnapshot(*entries)
		if err != nil {
			fatal(err)
		}
	}
	result, err := aquila.Localize(prog, snap, spec, aquila.Options{Budget: *budget, Parallel: *parallel})
	if err != nil {
		fatal(err)
	}
	fmt.Print(result.String())
	if result.Kind != aquila.BugNone {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aquila-localize:", err)
	os.Exit(2)
}
