// Command aquila-localize runs Aquila's automatic bug localization (§5 of
// the paper) on a program whose specification is violated: it reports
// either the minimal set of tables whose entries can fix the violation or
// the candidate program locations (action + variable) whose change can.
//
// Usage:
//
//	aquila-localize -spec spec.lpi [-p4 prog.p4] [-entries snap.txt]
//	                [-budget N] [-parallel N] [-schedule static|steal]
//	                [-portfolio K] [-incremental] [-simplify=false]
//	                [-preprocess] [-slice]
//	                [-trace out.json] [-pprof cpu.out] [-memprofile mem.out] [-v]
//
// -incremental makes the find-violations pass and the causality filter
// share one blasted solver per worker shard (activation literals over the
// common prefix) instead of a fresh solver per query; -simplify (default
// true) adds the algebraic pre-blast pass. -preprocess enables CNF
// preprocessing in every verdict-only solver (the model-extracting MaxSAT
// repair solver stays plain); -slice applies cone-of-influence slicing in
// the find-violations pass. -schedule steal and -portfolio K route the
// find-violations pass through the work-stealing scheduler / portfolio
// racing (incompatible with -incremental — rejected with an error, not
// silently resolved). Results are identical.
//
// -trace writes a Chrome trace-event JSON covering the localization
// pipeline (find-violations, table-entry repair, causality filter, fix
// simulation) with per-worker thread rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"aquila"
	"aquila/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		p4Path     = flag.String("p4", "", "P4lite program (overrides the spec's config path)")
		specPath   = flag.String("spec", "", "LPI specification file (required)")
		entries    = flag.String("entries", "", "table-entry snapshot file")
		budget     = flag.Int64("budget", 0, "SAT conflict budget per query (0: unlimited)")
		parallel   = flag.Int("parallel", 0, fmt.Sprintf("worker goroutines for localization re-checks (0: GOMAXPROCS, currently %d; 1: serial)", runtime.GOMAXPROCS(0)))
		schedule   = flag.String("schedule", "static", "find-violations work distribution: static|steal")
		portfolio  = flag.Int("portfolio", 1, "solver personalities raced per find-violations check; first verdict wins")
		incr       = flag.Bool("incremental", false, "shared-prefix incremental solving for verification and the causality filter")
		simplify   = flag.Bool("simplify", true, "algebraic simplification pass before blasting (incremental mode only)")
		preproc    = flag.Bool("preprocess", false, "SatELite-style CNF preprocessing in verdict-only solvers")
		slice      = flag.Bool("slice", false, "per-assertion cone-of-influence slicing in the find-violations pass")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON of the localization phases")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write heap profile on exit")
		verbose    = flag.Bool("v", false, "structured JSONL log on stderr")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
	)
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		return 2
	}
	sched, err := aquila.ParseSchedule(*schedule)
	if err != nil {
		return fail(err)
	}
	opts := aquila.Options{
		Budget: *budget, Parallel: *parallel,
		Incremental: *incr, Simplify: *simplify,
		Preprocess: *preproc, Slice: *slice,
		Schedule: sched, Portfolio: *portfolio,
	}

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf,
		MemProfilePath: *memProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
	})
	if err != nil {
		return fail(err)
	}
	obs.SetDefault(o)
	code := localizeMain(*p4Path, *specPath, *entries, opts)
	if err := closeObs(); err != nil {
		return fail(err)
	}
	return code
}

func localizeMain(p4Path, specPath, entries string, opts aquila.Options) int {
	spec, err := aquila.LoadSpec(specPath)
	if err != nil {
		return fail(err)
	}
	progPath := p4Path
	if progPath == "" {
		progPath = spec.Config["path"]
		if progPath != "" && !filepath.IsAbs(progPath) {
			progPath = filepath.Join(filepath.Dir(specPath), progPath)
		}
	}
	if progPath == "" {
		return fail(fmt.Errorf("no program: pass -p4 or set `config { path = ...; }` in the spec"))
	}
	prog, err := aquila.LoadProgram(progPath)
	if err != nil {
		return fail(err)
	}
	var snap *aquila.Snapshot
	if entries != "" {
		snap, err = aquila.LoadSnapshot(entries)
		if err != nil {
			return fail(err)
		}
	}
	result, err := aquila.Localize(prog, snap, spec, opts)
	if err != nil {
		return fail(err)
	}
	fmt.Print(result.String())
	if result.Kind != aquila.BugNone {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "aquila-localize:", err)
	return 2
}
