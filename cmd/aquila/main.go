// Command aquila verifies a P4lite program against an LPI specification —
// the paper's Figure 1 workflow: specification in, "no violation" or a
// debugging report out.
//
// Usage:
//
//	aquila -spec spec.lpi [-p4 prog.p4] [-entries snap.txt] [-all]
//	       [-parser sequential|tree] [-table abvtree|abvlinear|naive]
//	       [-packet kv|bitvector] [-budget N] [-parallel N]
//	       [-schedule static|steal] [-portfolio K]
//	       [-incremental] [-simplify=false] [-preprocess] [-slice]
//	       [-trace out.json] [-pprof cpu.out] [-memprofile mem.out] [-v]
//	       [-progress] [-metrics out.om] [-watchdog 30s]
//	       [-churn deltas.txt]
//
// -churn replays a "---"-separated table-delta sequence through a warm
// re-verification session (aquila.Session): the program is loaded and
// verified once, then each delta re-verifies only what its blast radius
// touches, with unchanged verdicts replayed from cache. Each step's
// report is byte-identical to a fresh verification of the mutated
// snapshot.
//
// -incremental switches find-all solving to the shared-prefix engine
// (blast the common VC prefix once per worker shard, check each assertion
// under an activation literal); it implies -all. -simplify (default true)
// controls the algebraic pre-blast simplification pass in that mode.
// -preprocess enables SatELite-style CNF preprocessing in the SAT core;
// -slice drops VC conjuncts outside each assertion's cone of influence
// before blasting (find-all modes). -schedule steal routes find-all
// checks through the work-stealing scheduler (implies -all); -portfolio K
// races K diverse solver personalities per check and takes the first
// verdict (implies -all). Reports are byte-identical to the default
// fresh-solver mode under every combination of these flags; incompatible
// combinations (e.g. -stream with -parallel, -schedule steal with
// -incremental) are rejected up front with an error naming the conflict.
//
// The P4 program may also be named by the spec's config section
// (`config { path = prog.p4; }`), or selected from the built-in corpus
// with -builtin (e.g. `aquila -builtin dc-gateway -all`, which infers the
// undefined-behaviour spec — handy for smoke tests and CI; `skewed` is
// the deliberately load-imbalanced scheduler benchmark).
//
// -trace writes a Chrome trace-event JSON (load it in chrome://tracing or
// Perfetto) with one span per pipeline phase and per assertion solve;
// under -parallel each worker appears as its own thread row.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"aquila"
	"aquila/internal/encode"
	"aquila/internal/obs"
	"aquila/internal/progs"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so the observability closers (trace
// flush, profile writes) registered before the verdict always execute.
func run() int {
	var (
		p4Path     = flag.String("p4", "", "P4lite program (overrides the spec's config path)")
		specPath   = flag.String("spec", "", "LPI specification file (required unless -builtin)")
		builtin    = flag.String("builtin", "", "verify a built-in benchmark program (dc-gateway, skewed) under its inferred undefined-behaviour spec")
		entries    = flag.String("entries", "", "table-entry snapshot file (omit: verify under any entries)")
		findAll    = flag.Bool("all", false, "find all violated assertions (default: first only)")
		parserStr  = flag.String("parser", "sequential", "parser encoding: sequential|tree")
		tableStr   = flag.String("table", "abvtree", "table encoding: abvtree|abvlinear|naive")
		packetStr  = flag.String("packet", "kv", "packet encoding: kv|bitvector")
		budget     = flag.Int64("budget", 0, "SAT conflict budget per query (0: unlimited)")
		parallel   = flag.Int("parallel", 0, fmt.Sprintf("worker goroutines for -all checks (0: GOMAXPROCS, currently %d; 1: serial)", runtime.GOMAXPROCS(0)))
		incr       = flag.Bool("incremental", false, "shared-prefix incremental solving for -all (implies -all)")
		simplify   = flag.Bool("simplify", true, "algebraic simplification pass before blasting (incremental mode only)")
		preproc    = flag.Bool("preprocess", false, "SatELite-style CNF preprocessing in the SAT core")
		slice      = flag.Bool("slice", false, "per-assertion cone-of-influence slicing of the VC (find-all modes)")
		stream     = flag.Bool("stream", false, "streaming VC generation for -all: release per-assertion transient terms, bounding peak memory (implies -all, forces serial)")
		schedule   = flag.String("schedule", "static", "find-all work distribution: static|steal (steal implies -all)")
		portfolio  = flag.Int("portfolio", 1, "solver personalities raced per find-all check; first verdict wins (>1 implies -all)")
		blocklist  = flag.Bool("blocklist", false, "with no -entries: print the table behaviours that trigger each violation (§2 blocklist)")
		jsonOut    = flag.Bool("json", false, "emit a machine-readable JSON report")
		canonical  = flag.Bool("canonical", false, "with -json: emit the canonical report (cost counters zeroed) — byte-identical across engines, for differential checks")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON of the run's phases and per-assertion solves")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write heap profile on exit")
		verbose    = flag.Bool("v", false, "structured JSONL log on stderr (phase begin/end, verdicts, budget exhaustion)")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr (conflicts/sec, trail, learnt DB)")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
		watchdog   = flag.Duration("watchdog", 0, "stall window: dump diagnostics for any check solving longer than this without finishing (0: off)")
		churnPath  = flag.String("churn", "", "delta sequence file: re-verify through a warm session after each \"---\"-separated delta (implies -all and -slice)")
	)
	flag.Parse()
	if *specPath == "" && *builtin == "" {
		flag.Usage()
		return 2
	}
	sched, err := aquila.ParseSchedule(*schedule)
	if err != nil {
		return fail(err)
	}
	opts := aquila.Options{
		FindAll:     *findAll || *incr || *stream || sched == aquila.ScheduleSteal || *portfolio > 1,
		Budget:      *budget,
		Parallel:    *parallel,
		Incremental: *incr,
		Simplify:    *simplify,
		Preprocess:  *preproc,
		Slice:       *slice,
		Stream:      *stream,
		Schedule:    sched,
		Portfolio:   *portfolio,
		Encode:      encodeOptions(*parserStr, *tableStr, *packetStr),
	}

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf,
		MemProfilePath: *memProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
		StallWindow: *watchdog,
	})
	if err != nil {
		return fail(err)
	}
	obs.SetDefault(o)
	var code int
	if *churnPath != "" {
		code = churnMain(*p4Path, *specPath, *builtin, *entries, *churnPath, opts)
	} else {
		code = verifyMain(*p4Path, *specPath, *builtin, *entries,
			*blocklist, *jsonOut, *canonical, opts)
	}
	if err := closeObs(); err != nil {
		return fail(err)
	}
	return code
}

// churnMain replays a delta sequence through a warm re-verification
// session: one baseline verification, then one cheap delta
// re-verification per "---"-separated delta, printing the verdict and the
// replay/re-check split each step. Exits 1 when the final state violates
// the spec.
func churnMain(p4Path, specPath, builtin, entries, churnPath string, opts aquila.Options) int {
	prog, spec, err := loadProblem(p4Path, specPath, builtin)
	if err != nil {
		return fail(err)
	}
	var snap *aquila.Snapshot
	if entries != "" {
		snap, err = aquila.LoadSnapshot(entries)
		if err != nil {
			return fail(err)
		}
	}
	deltas, err := aquila.LoadDeltas(churnPath)
	if err != nil {
		return fail(err)
	}
	sess, err := aquila.NewSession(prog, snap, spec, opts)
	if err != nil {
		return fail(err)
	}
	defer sess.Close()
	report := sess.Baseline()
	fmt.Printf("baseline: %s\n", verdictLine(report))
	for i, d := range deltas {
		report, err = sess.Apply(d)
		if err != nil {
			return fail(fmt.Errorf("delta %d: %w", i+1, err))
		}
		fmt.Printf("delta %d: %s (replayed %d, re-checked %d of %d assertions)\n",
			i+1, verdictLine(report), report.Stats.DeltaReuse,
			report.Stats.DeltaRecheck, report.Stats.Assertions)
	}
	st := sess.SessionStats()
	fmt.Printf("session: %d deltas, %d verdicts replayed, %d re-checked, %d stale indicators retired\n",
		st.Deltas, st.ReuseHits, st.Rechecks, st.Retired)
	if !report.Holds {
		return 1
	}
	return 0
}

func verdictLine(r *aquila.Report) string {
	if r.Holds {
		return "holds"
	}
	return fmt.Sprintf("%d violation(s)", len(r.Violations))
}

// loadProblem resolves the program and spec from -builtin or -spec/-p4.
func loadProblem(p4Path, specPath, builtin string) (*aquila.Program, *aquila.Spec, error) {
	if builtin != "" {
		return builtinProblem(builtin)
	}
	spec, err := aquila.LoadSpec(specPath)
	if err != nil {
		return nil, nil, err
	}
	progPath := p4Path
	if progPath == "" {
		progPath = spec.Config["path"]
		if progPath != "" && !filepath.IsAbs(progPath) {
			progPath = filepath.Join(filepath.Dir(specPath), progPath)
		}
	}
	if progPath == "" {
		return nil, nil, fmt.Errorf("no program: pass -p4 or set `config { path = ...; }` in the spec")
	}
	prog, err := aquila.LoadProgram(progPath)
	if err != nil {
		return nil, nil, err
	}
	return prog, spec, nil
}

func verifyMain(p4Path, specPath, builtin, entries string,
	blocklist, jsonOut, canonical bool, opts aquila.Options) int {
	prog, spec, err := loadProblem(p4Path, specPath, builtin)
	if err != nil {
		return fail(err)
	}
	var snap *aquila.Snapshot
	if entries != "" {
		snap, err = aquila.LoadSnapshot(entries)
		if err != nil {
			return fail(err)
		}
	}
	report, err := aquila.Verify(prog, snap, spec, opts)
	if err != nil {
		return fail(err)
	}
	if jsonOut {
		var data []byte
		if canonical {
			data, err = report.CanonicalJSON()
		} else {
			data, err = report.JSON()
		}
		if err != nil {
			return fail(err)
		}
		fmt.Println(string(data))
		if !report.Holds {
			return 1
		}
		return 0
	}
	fmt.Print(report.String())
	if blocklist && snap == nil && !report.Holds {
		fmt.Println("blocklist (entry behaviours to prevent at runtime):")
		for _, b := range report.Blocklist() {
			mode := "miss"
			if b.Hit {
				mode = fmt.Sprintf("hit with action id %d", b.ActionLAID)
			}
			fmt.Printf("  %s: %s (violates %s)\n", b.Table, mode, b.Assertion)
		}
	}
	if !report.Holds {
		return 1
	}
	return 0
}

// builtinProblem resolves a -builtin name to a corpus program plus its
// inferred undefined-behaviour spec.
func builtinProblem(name string) (*aquila.Program, *aquila.Spec, error) {
	var bm *progs.Benchmark
	switch name {
	case "dc-gateway":
		bm = progs.DCGatewayBench()
	case "skewed":
		bm = progs.SkewedBench()
	default:
		return nil, nil, fmt.Errorf("unknown -builtin %q (available: dc-gateway, skewed)", name)
	}
	prog, err := bm.Parse()
	if err != nil {
		return nil, nil, err
	}
	spec, err := aquila.ParseSpec(progs.InvalidHeaderAccessSpec(prog, bm.Calls))
	if err != nil {
		return nil, nil, err
	}
	return prog, spec, nil
}

func encodeOptions(parserStr, tableStr, packetStr string) encode.Options {
	var o encode.Options
	switch parserStr {
	case "tree":
		o.Parser = encode.ParserTree
	default:
		o.Parser = encode.ParserSequential
	}
	switch tableStr {
	case "naive":
		o.Table = encode.TableNaive
	case "abvlinear":
		o.Table = encode.TableABVLinear
	default:
		o.Table = encode.TableABVTree
	}
	switch packetStr {
	case "bitvector":
		o.Packet = encode.PacketBitvector
	default:
		o.Packet = encode.PacketKV
	}
	return o
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "aquila:", err)
	return 2
}
