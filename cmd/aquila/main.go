// Command aquila verifies a P4lite program against an LPI specification —
// the paper's Figure 1 workflow: specification in, "no violation" or a
// debugging report out.
//
// Usage:
//
//	aquila -spec spec.lpi [-p4 prog.p4] [-entries snap.txt] [-all]
//	       [-parser sequential|tree] [-table abvtree|abvlinear|naive]
//	       [-packet kv|bitvector] [-budget N] [-parallel N]
//
// The P4 program may also be named by the spec's config section
// (`config { path = prog.p4; }`).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"aquila"
	"aquila/internal/encode"
)

func main() {
	var (
		p4Path    = flag.String("p4", "", "P4lite program (overrides the spec's config path)")
		specPath  = flag.String("spec", "", "LPI specification file (required)")
		entries   = flag.String("entries", "", "table-entry snapshot file (omit: verify under any entries)")
		findAll   = flag.Bool("all", false, "find all violated assertions (default: first only)")
		parserStr = flag.String("parser", "sequential", "parser encoding: sequential|tree")
		tableStr  = flag.String("table", "abvtree", "table encoding: abvtree|abvlinear|naive")
		packetStr = flag.String("packet", "kv", "packet encoding: kv|bitvector")
		budget    = flag.Int64("budget", 0, "SAT conflict budget per query (0: unlimited)")
		parallel  = flag.Int("parallel", 0, fmt.Sprintf("worker goroutines for -all checks (0: GOMAXPROCS, currently %d; 1: serial)", runtime.GOMAXPROCS(0)))
		blocklist = flag.Bool("blocklist", false, "with no -entries: print the table behaviours that trigger each violation (§2 blocklist)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report")
	)
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, err := aquila.LoadSpec(*specPath)
	if err != nil {
		fatal(err)
	}
	progPath := *p4Path
	if progPath == "" {
		progPath = spec.Config["path"]
		if progPath != "" && !filepath.IsAbs(progPath) {
			progPath = filepath.Join(filepath.Dir(*specPath), progPath)
		}
	}
	if progPath == "" {
		fatal(fmt.Errorf("no program: pass -p4 or set `config { path = ...; }` in the spec"))
	}
	prog, err := aquila.LoadProgram(progPath)
	if err != nil {
		fatal(err)
	}
	var snap *aquila.Snapshot
	if *entries != "" {
		snap, err = aquila.LoadSnapshot(*entries)
		if err != nil {
			fatal(err)
		}
	}
	opts := aquila.Options{
		FindAll:  *findAll,
		Budget:   *budget,
		Parallel: *parallel,
		Encode:   encodeOptions(*parserStr, *tableStr, *packetStr),
	}
	report, err := aquila.Verify(prog, snap, spec, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		data, err := report.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
		if !report.Holds {
			os.Exit(1)
		}
		return
	}
	fmt.Print(report.String())
	if *blocklist && snap == nil && !report.Holds {
		fmt.Println("blocklist (entry behaviours to prevent at runtime):")
		for _, b := range report.Blocklist() {
			mode := "miss"
			if b.Hit {
				mode = fmt.Sprintf("hit with action id %d", b.ActionLAID)
			}
			fmt.Printf("  %s: %s (violates %s)\n", b.Table, mode, b.Assertion)
		}
	}
	if !report.Holds {
		os.Exit(1)
	}
}

func encodeOptions(parserStr, tableStr, packetStr string) encode.Options {
	var o encode.Options
	switch parserStr {
	case "tree":
		o.Parser = encode.ParserTree
	default:
		o.Parser = encode.ParserSequential
	}
	switch tableStr {
	case "naive":
		o.Table = encode.TableNaive
	case "abvlinear":
		o.Table = encode.TableABVLinear
	default:
		o.Table = encode.TableABVTree
	}
	switch packetStr {
	case "bitvector":
		o.Packet = encode.PacketBitvector
	default:
		o.Packet = encode.PacketKV
	}
	return o
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aquila:", err)
	os.Exit(2)
}
