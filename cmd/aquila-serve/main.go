// Command aquila-serve is the continuous verification daemon: it loads
// one program+spec pair, then serves named warm verify.Sessions over
// HTTP — the control plane POSTs table deltas, the daemon answers each
// with the canonical verification report, byte-identical to a fresh run
// on the mutated snapshot (internal/serve documents the contract).
//
// Usage:
//
//	aquila-serve -builtin dc-gateway -addr 127.0.0.1:8471 -journal dir/
//	aquila-serve -spec prog.lpi [-p4 prog.p4] [-entries snap.txt]
//	aquila-serve -builtin dc-gateway -journal dir/ -check-journal
//
// With -journal, every session is persisted to an append-only
// checksummed journal and rebuilt on restart; -check-journal replays the
// journal directory and exits (0 iff every session recovers), the CI
// post-shutdown assertion. SIGTERM/SIGINT drain gracefully: queued
// deltas finish verifying and journaling, then the process exits 0.
//
// Observability flags (-trace, -pprof, -memprofile, -v, -progress,
// -metrics) match the other CLIs; GET /metrics serves the same registry
// live.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"aquila/internal/lpi"
	"aquila/internal/obs"
	"aquila/internal/p4"
	"aquila/internal/progs"
	"aquila/internal/serve"
	"aquila/internal/tables"
	"aquila/internal/verify"
)

func main() { os.Exit(mainRun()) }

func mainRun() int {
	var (
		p4Path   = flag.String("p4", "", "P4lite program file (default: the spec's config path)")
		specPath = flag.String("spec", "", "LPI specification file")
		builtin  = flag.String("builtin", "", "corpus program with inferred UB spec: dc-gateway or skewed")
		entries  = flag.String("entries", "", "base table-entry snapshot file for new sessions (default: verify under any entries)")
		addr     = flag.String("addr", "127.0.0.1:8471", "listen address")
		journal  = flag.String("journal", "", "journal directory: persist sessions and recover them on restart")
		checkJ   = flag.Bool("check-journal", false, "replay the -journal directory and exit (0 iff every session recovers)")
		budget   = flag.Int64("budget", 0, "default SAT conflict budget per check (0: unlimited)")
		deadline = flag.Int64("deadline-ms", 0, "default per-delta verification deadline in milliseconds (0: none)")
		maxBody  = flag.Int64("max-body", serve.DefaultMaxBody, "maximum request body bytes")

		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON covering the run")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write heap profile on exit")
		verbose    = flag.Bool("v", false, "structured JSONL log on stderr")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
	)
	flag.Parse()

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf,
		MemProfilePath: *memProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
	})
	if err != nil {
		return fail(err)
	}
	obs.SetDefault(o)

	prog, spec, ref, err := loadProblem(*p4Path, *specPath, *builtin)
	if err != nil {
		return fail(err)
	}
	var snap *tables.Snapshot
	if *entries != "" {
		data, err := os.ReadFile(*entries)
		if err != nil {
			return fail(err)
		}
		snap, err = tables.ParseSnapshot(string(data))
		if err != nil {
			return fail(err)
		}
	}

	srv, err := serve.New(serve.Config{
		Prog:       prog,
		Spec:       spec,
		Snap:       snap,
		Opts:       verify.Options{Budget: *budget},
		ProgramRef: ref,
		JournalDir: *journal,
		MaxBody:    *maxBody,
		Deadline:   time.Duration(*deadline) * time.Millisecond,
		Obs:        o,
	})
	if err != nil {
		return fail(err)
	}
	if srv.Recovered() > 0 {
		fmt.Printf("aquila-serve: recovered %d session(s) from %s\n", srv.Recovered(), *journal)
	}
	if *checkJ {
		if *journal == "" {
			return fail(fmt.Errorf("-check-journal needs -journal"))
		}
		fmt.Printf("aquila-serve: journal %s: %d session(s) replayable\n", *journal, srv.Recovered())
		srv.Close()
		if err := closeObs(); err != nil {
			return fail(err)
		}
		return 0
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	fmt.Printf("aquila-serve: listening on %s (%s)\n", *addr, ref)

	select {
	case err := <-errc:
		srv.Close()
		closeObs()
		return fail(err)
	case sig := <-sigc:
		fmt.Printf("aquila-serve: %v: draining\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "aquila-serve: shutdown: %v\n", err)
	}
	srv.Close()
	if err := closeObs(); err != nil {
		return fail(err)
	}
	fmt.Println("aquila-serve: drained")
	return 0
}

// loadProblem resolves the program and spec from -builtin or -spec/-p4,
// returning a program ref that pins the exact sources: journals written
// under one ref refuse to replay under another, so editing the program
// between restarts fails loudly instead of re-verifying deltas against
// the wrong pipeline.
func loadProblem(p4Path, specPath, builtin string) (*p4.Program, *lpi.Spec, string, error) {
	if builtin != "" {
		var bm *progs.Benchmark
		switch builtin {
		case "dc-gateway":
			bm = progs.DCGatewayBench()
		case "skewed":
			bm = progs.SkewedBench()
		default:
			return nil, nil, "", fmt.Errorf("unknown -builtin %q (available: dc-gateway, skewed)", builtin)
		}
		prog, err := bm.Parse()
		if err != nil {
			return nil, nil, "", err
		}
		specSrc := progs.InvalidHeaderAccessSpec(prog, bm.Calls)
		spec, err := lpi.Parse(specSrc)
		if err != nil {
			return nil, nil, "", err
		}
		return prog, spec, programRef("builtin:"+builtin, bm.Source, specSrc), nil
	}
	if specPath == "" {
		return nil, nil, "", fmt.Errorf("no problem: pass -builtin or -spec")
	}
	specData, err := os.ReadFile(specPath)
	if err != nil {
		return nil, nil, "", err
	}
	spec, err := lpi.Parse(string(specData))
	if err != nil {
		return nil, nil, "", err
	}
	progPath := p4Path
	if progPath == "" {
		progPath = spec.Config["path"]
		if progPath != "" && !filepath.IsAbs(progPath) {
			progPath = filepath.Join(filepath.Dir(specPath), progPath)
		}
	}
	if progPath == "" {
		return nil, nil, "", fmt.Errorf("no program: pass -p4 or set `config { path = ...; }` in the spec")
	}
	progData, err := os.ReadFile(progPath)
	if err != nil {
		return nil, nil, "", err
	}
	prog, err := p4.ParseAndCheck(progPath, string(progData))
	if err != nil {
		return nil, nil, "", err
	}
	return prog, spec, programRef("p4:"+filepath.Base(progPath), string(progData), string(specData)), nil
}

// programRef is "<label> sha256:<hex>" over the program and spec sources.
func programRef(label, progSrc, specSrc string) string {
	sum := sha256.Sum256([]byte(progSrc + "\x00" + specSrc))
	return fmt.Sprintf("%s sha256:%x", label, sum[:8])
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "aquila-serve:", err)
	return 2
}
