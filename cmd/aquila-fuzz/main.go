// Command aquila-fuzz runs the coverage-guided differential fuzzing
// campaign of the self-validation story: generated P4lite programs and
// table snapshots are mutated at the AST level, steered by structural
// coverage of the encoder and solver pipeline, and every surviving mutant
// is checked against three oracles — refinement vs the independent
// interpreter, verdict/report agreement across the engine matrix, and
// counterexample replay through the path-based executor.
//
// Usage:
//
//	aquila-fuzz [-seed N] [-iters N] [-duration 60s] [-bug empty-state-accept]
//	            [-out dir] [-minimize] [-thorough] [-seeds N] [-muts N]
//	            [-trace out.json] [-pprof cpu.out] [-v]
//	aquila-fuzz -replay repro.json
//
// Exit status is 0 for a clean campaign, 1 when a divergence was found
// (reproducers are written under -out), 2 on usage or setup errors.
// -replay re-runs the oracles on a committed reproducer record: exit 0
// when the record's expectation holds (a live record still diverges, a
// "fixed" record replays clean), 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aquila/internal/fuzz"
	"aquila/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		seed       = flag.Int64("seed", 1, "campaign seed (the whole run is deterministic in it)")
		iters      = flag.Int("iters", 1000, "fuzzing iterations")
		duration   = flag.Duration("duration", 0, "stop after this wall-clock budget (0 = iterations only)")
		bug        = flag.String("bug", "", "rediscovery mode: inject a historical encoder bug (empty-state-accept, ignore-defaultonly) and stop at the first input exposing it")
		outDir     = flag.String("out", "", "write reproducer JSON + test files for each divergence into this directory")
		minimize   = flag.Bool("minimize", true, "delta-debug divergent inputs before reporting")
		thorough   = flag.Bool("thorough", false, "run the engine matrix and replay oracles on every mutant, not just on new coverage")
		seedProgs  = flag.Int("seeds", 4, "generator configurations seeding the corpus")
		maxMuts    = flag.Int("muts", 3, "max AST mutations per derived input")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON of the campaign")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		verbose    = flag.Bool("v", false, "log per-iteration progress to stderr")
		replay     = flag.String("replay", "", "replay one reproducer .json record instead of fuzzing")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
	)
	flag.Parse()

	if *replay != "" {
		return runReplay(*replay)
	}

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
	})
	if err != nil {
		return fail(err)
	}
	obs.SetDefault(o)

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	eng := fuzz.New(fuzz.Config{
		Seed:                *seed,
		Iters:               *iters,
		Deadline:            *duration,
		TargetBug:           *bug,
		SeedPrograms:        *seedProgs,
		MaxMutations:        *maxMuts,
		Log:                 logw,
		MinimizeDivergences: *minimize,
		Thorough:            *thorough,
	})
	res, err := eng.Run()
	if err != nil {
		return fail(err)
	}
	if err := closeObs(); err != nil {
		return fail(err)
	}

	fmt.Printf("aquila-fuzz: %d iterations (%d rejected), %d coverage points, corpus %d, %s\n",
		res.Iters, res.Rejected, res.CoveragePoints, res.CorpusSize, res.Elapsed.Round(time.Millisecond))
	if *bug != "" {
		if res.FoundAtIter > 0 {
			fmt.Printf("injected bug %q exposed at iteration %d\n", *bug, res.FoundAtIter)
		} else {
			fmt.Printf("injected bug %q NOT exposed within budget\n", *bug)
			return 1
		}
	}
	if len(res.Divergences) == 0 {
		fmt.Println("no divergences: the pipeline is self-consistent on this campaign")
		return 0
	}
	for _, d := range res.Divergences {
		fmt.Printf("DIVERGENCE %s\n", d)
		if *outDir != "" {
			r := fuzz.NewRepro(d, *bug)
			path, err := r.WriteFiles(*outDir)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("  reproducer: %s\n", path)
		}
	}
	// In rediscovery mode finding the divergence is the success condition.
	if *bug != "" {
		return 0
	}
	return 1
}

// runReplay re-runs the oracles on one reproducer record and checks its
// expectation: live records must still diverge, fixed ones must not.
func runReplay(path string) int {
	r, err := fuzz.LoadRepro(path)
	if err != nil {
		return fail(err)
	}
	divs, err := r.Replay()
	if err != nil {
		return fail(err)
	}
	var hit *fuzz.Divergence
	for _, d := range divs {
		if d.Oracle == r.Oracle {
			hit = d
			break
		}
	}
	switch {
	case r.Fixed && hit != nil:
		fmt.Printf("fixed repro diverges again: %s\n", hit)
		return 1
	case r.Fixed:
		fmt.Printf("fixed repro replays clean on oracle %s\n", r.Oracle)
		return 0
	case hit != nil:
		fmt.Printf("repro still diverges: %s\n", hit)
		return 0
	default:
		fmt.Printf("repro no longer diverges on oracle %s (fixed? mark it \"fixed\": true)\n", r.Oracle)
		return 1
	}
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "aquila-fuzz:", err)
	return 2
}
