// Command aquila-validate runs Aquila's self validation (§6 of the
// paper): a refinement proof between the GCL encoder and an independent
// reference semantics for the components of a program. Use it after
// changing the encoder — or with -bug to watch it catch the historical
// encoder bugs of §7.2.
//
// Usage:
//
//	aquila-validate -p4 prog.p4 [-entries snap.txt] [-components a,b,...]
//	                [-bug empty-state-accept|ignore-defaultonly] [-simplify] [-preprocess]
//	                [-trace out.json] [-pprof cpu.out] [-memprofile mem.out] [-v]
//
// -simplify routes every refinement query through the algebraic
// simplification pass before solving, so a simplifier bug that changes a
// verdict shows up as a refinement mismatch here.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"aquila"
	"aquila/internal/encode"
	"aquila/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		p4Path     = flag.String("p4", "", "P4lite program (required)")
		entries    = flag.String("entries", "", "table-entry snapshot file")
		components = flag.String("components", "", "comma-separated components (default: every pipeline)")
		bug        = flag.String("bug", "", "inject a historical encoder bug (empty-state-accept, ignore-defaultonly)")
		simplify   = flag.Bool("simplify", false, "pass refinement queries through the algebraic simplification pass")
		preproc    = flag.Bool("preprocess", false, "SatELite-style CNF preprocessing in the refinement solver")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON of the validation phases")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write heap profile on exit")
		verbose    = flag.Bool("v", false, "structured JSONL log on stderr")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
	)
	flag.Parse()
	if *p4Path == "" {
		flag.Usage()
		return 2
	}

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf,
		MemProfilePath: *memProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
	})
	if err != nil {
		return fail(err)
	}
	obs.SetDefault(o)
	code := validateMain(*p4Path, *entries, *components, *bug, *simplify, *preproc)
	if err := closeObs(); err != nil {
		return fail(err)
	}
	return code
}

func validateMain(p4Path, entries, components, bug string, simplify, preprocess bool) int {
	prog, err := aquila.LoadProgram(p4Path)
	if err != nil {
		return fail(err)
	}
	var snap *aquila.Snapshot
	if entries != "" {
		snap, err = aquila.LoadSnapshot(entries)
		if err != nil {
			return fail(err)
		}
	}
	var comps []string
	if components != "" {
		comps = strings.Split(components, ",")
	} else {
		for name := range prog.Pipelines {
			comps = append(comps, name)
		}
		sort.Strings(comps)
	}
	if len(comps) == 0 {
		return fail(fmt.Errorf("no components to validate: declare a pipeline or pass -components"))
	}
	result, err := aquila.SelfValidate(prog, snap, comps, aquila.Options{
		Encode:     encode.Options{InjectEncoderBug: bug},
		Simplify:   simplify,
		Preprocess: preprocess,
	})
	if err != nil {
		return fail(err)
	}
	fmt.Print(result.String())
	if !result.Equivalent {
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "aquila-validate:", err)
	return 2
}
