// Command aquila-validate runs Aquila's self validation (§6 of the
// paper): a refinement proof between the GCL encoder and an independent
// reference semantics for the components of a program. Use it after
// changing the encoder — or with -bug to watch it catch the historical
// encoder bugs of §7.2.
//
// Usage:
//
//	aquila-validate -p4 prog.p4 [-entries snap.txt] [-components a,b,...]
//	                [-bug empty-state-accept|ignore-defaultonly]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"aquila"
	"aquila/internal/encode"
)

func main() {
	var (
		p4Path     = flag.String("p4", "", "P4lite program (required)")
		entries    = flag.String("entries", "", "table-entry snapshot file")
		components = flag.String("components", "", "comma-separated components (default: every pipeline)")
		bug        = flag.String("bug", "", "inject a historical encoder bug (empty-state-accept, ignore-defaultonly)")
	)
	flag.Parse()
	if *p4Path == "" {
		flag.Usage()
		os.Exit(2)
	}
	prog, err := aquila.LoadProgram(*p4Path)
	if err != nil {
		fatal(err)
	}
	var snap *aquila.Snapshot
	if *entries != "" {
		snap, err = aquila.LoadSnapshot(*entries)
		if err != nil {
			fatal(err)
		}
	}
	var comps []string
	if *components != "" {
		comps = strings.Split(*components, ",")
	} else {
		for name := range prog.Pipelines {
			comps = append(comps, name)
		}
		sort.Strings(comps)
	}
	if len(comps) == 0 {
		fatal(fmt.Errorf("no components to validate: declare a pipeline or pass -components"))
	}
	result, err := aquila.SelfValidate(prog, snap, comps, aquila.Options{
		Encode: encode.Options{InjectEncoderBug: *bug},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(result.String())
	if !result.Equivalent {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aquila-validate:", err)
	os.Exit(2)
}
