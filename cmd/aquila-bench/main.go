// Command aquila-bench regenerates the tables and figures of the paper's
// evaluation (§8). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Usage:
//
//	aquila-bench -exp table1
//	aquila-bench -exp table2
//	aquila-bench -exp table3 [-quick] [-suite hand|full]
//	aquila-bench -exp table4 [-scales small,medium,large]
//	aquila-bench -exp fig11a [-k 5] [-scale medium]
//	aquila-bench -exp fig11b [-entries 1000,2000,3000,4000,5000]
//	aquila-bench -exp parallel [-parallel 1,2,4,8] [-portfolios 1,2] [-repeats 3]
//	                           [-out BENCH_parallel.json]
//	aquila-bench -exp incremental [-parallel 1,2,4] [-repeats 3] [-incr-out BENCH_incremental.json]
//	aquila-bench -exp preproc [-parallel 1,2,4] [-repeats 3] [-preproc-out BENCH_preproc.json]
//	                          [-compare BENCH_preproc.json]
//	aquila-bench -exp churn [-churn-entries 64] [-churn-deltas 8]
//	                        [-churn-out BENCH_churn.json] [-compare-churn BENCH_churn.json]
//	aquila-bench -exp serve [-churn-entries 64] [-churn-deltas 8]
//	                        [-serve-out BENCH_serve.json] [-compare-serve BENCH_serve.json]
//	aquila-bench -exp obs [-repeats 3] [-obs-out BENCH_obs.json]
//	aquila-bench -exp fuzz [-quick]
//	aquila-bench -exp scale [-quick] [-scale-out BENCH_scale.json]
//	                        [-compare-scale BENCH_scale.json]
//	aquila-bench -exp all -quick
//	aquila-bench -analyze trace.json [-analyze-out util.json]
//	             [-compare-util BENCH_obs.json] [-compare-straggler util.json]
//
// -analyze skips the experiments and runs the worker-utilization pass
// over a Chrome trace (as written by any CLI's -trace): per-worker busy
// fraction over the solve phase, the critical path, and the straggler
// index. -compare-util gates against a reference (a BENCH_obs.json or a
// previous -analyze-out), failing on a >20% mean-busy-fraction
// regression — the CI scheduling-regression check. -compare-straggler
// gates the work-stealing scheduler: the analyzed trace's straggler
// index must not be worse than the reference's (static-schedule) index.
//
// Observability flags (shared with the other CLIs): -trace writes a
// Chrome trace-event JSON covering the whole run, -pprof/-memprofile
// write pprof profiles, -v logs structured JSONL to stderr, -progress
// prints a live solver heartbeat line, -metrics writes an OpenMetrics
// exposition of the counter registry on exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"aquila/internal/bench"
	"aquila/internal/genprog"
	"aquila/internal/obs"
	"aquila/internal/progs"
)

func main() { os.Exit(mainRun()) }

func mainRun() int {
	var (
		exp        = flag.String("exp", "all", "experiment: table1|table2|table3|table4|fig11a|fig11b|parallel|incremental|preproc|churn|serve|obs|fuzz|scale|all")
		quick      = flag.Bool("quick", false, "smaller budgets and workloads")
		suite      = flag.String("suite", "full", "table3 suite: hand (5 programs) or full (12)")
		scales     = flag.String("scales", "small,medium,large", "table4 switch-T scales")
		k          = flag.Int("k", 5, "fig11a maximum chain length")
		scale      = flag.String("scale", "medium", "fig11a/fig11b switch-T scale")
		entries    = flag.String("entries", "1000,2000,3000,4000,5000", "fig11b entry counts")
		parallel   = flag.String("parallel", "1,2,4,8", "parallel-sweep worker counts (first must be 1, the speedup baseline)")
		portfolios = flag.String("portfolios", "1,2", "parallel-sweep portfolio sizes (first must be 1, the no-racing baseline)")
		repeats    = flag.Int("repeats", 3, "parallel/obs runs per configuration (best wall time kept)")
		outPath    = flag.String("out", "BENCH_parallel.json", "parallel-sweep JSON output file (empty: stdout table only)")
		incrOut    = flag.String("incr-out", "BENCH_incremental.json", "incremental-sweep JSON output file (empty: stdout table only)")
		prepOut    = flag.String("preproc-out", "BENCH_preproc.json", "preproc-sweep JSON output file (empty: stdout table only)")
		compare    = flag.String("compare", "", "preproc only: reference BENCH_preproc.json; exit non-zero if relative wall time regresses >20%")
		churnEnt   = flag.Int("churn-entries", 64, "churn: installed entries in the churned ECMP table")
		churnN     = flag.Int("churn-deltas", 8, "churn: steady-state deltas measured (after 2 warmups)")
		churnOut   = flag.String("churn-out", "BENCH_churn.json", "churn-experiment JSON output file (empty: stdout table only)")
		churnCmp   = flag.String("compare-churn", "", "churn only: reference BENCH_churn.json; exit non-zero on byte-identity break, <5x steady-state speedup, or >50% relative regression")
		serveOut   = flag.String("serve-out", "BENCH_serve.json", "serve-experiment JSON output file (empty: stdout table only)")
		serveCmp   = flag.String("compare-serve", "", "serve only: reference BENCH_serve.json; exit non-zero on byte-identity break, <5x steady-state speedup, or >50% relative regression")
		scaleOut   = flag.String("scale-out", "BENCH_scale.json", "scale-campaign JSON output file (empty: stdout table only)")
		scaleCmp   = flag.String("compare-scale", "", "scale only: reference BENCH_scale.json; exit non-zero on >20% relative regression")
		obsOut     = flag.String("obs-out", "BENCH_obs.json", "obs-experiment JSON output file (empty or -quick: stdout table only)")
		analyzeIn  = flag.String("analyze", "", "skip experiments: analyze worker utilization of a Chrome trace JSON (as written by -trace)")
		analyzeOut = flag.String("analyze-out", "", "with -analyze: write the utilization JSON here")
		utilCmp    = flag.String("compare-util", "", "with -analyze: reference BENCH_obs.json (or utilization JSON); exit non-zero if mean busy fraction regresses >20%")
		stragCmp   = flag.String("compare-straggler", "", "with -analyze: reference utilization JSON; exit non-zero if the straggler index is worse than the reference's (the steal-vs-static load-balance gate)")
		tracePath  = flag.String("trace", "", "write Chrome trace-event JSON covering the run")
		cpuProf    = flag.String("pprof", "", "write CPU profile (go tool pprof)")
		memProf    = flag.String("memprofile", "", "write heap profile on exit")
		verbose    = flag.Bool("v", false, "structured JSONL log on stderr")
		progress   = flag.Bool("progress", false, "live solver-heartbeat status line on stderr")
		metricsOut = flag.String("metrics", "", "write OpenMetrics text exposition of the metrics registry on exit")
	)
	flag.Parse()

	if *analyzeIn != "" {
		return analyzeMain(*analyzeIn, *analyzeOut, *utilCmp, *stragCmp)
	}

	o, closeObs, err := obs.Setup(obs.Config{
		TracePath: *tracePath, CPUProfilePath: *cpuProf,
		MemProfilePath: *memProf, Verbose: *verbose,
		Progress: *progress, MetricsPath: *metricsOut,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aquila-bench: %v\n", err)
		return 2
	}
	obs.SetDefault(o)

	code := 0
	run := func(name string, f func() error) {
		if code != 0 || (*exp != "all" && *exp != name) {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "aquila-bench: %s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error {
		rows := bench.Table1()
		fmt.Print(bench.FormatTable1(rows))
		return nil
	})

	run("table2", func() error {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable2(rows))
		return nil
	})

	run("table3", func() error {
		var programs []*progs.Benchmark
		if *suite == "hand" {
			programs = progs.HandWrittenSuite()
		} else {
			programs = genprog.Table3Suite()
		}
		lim := bench.DefaultLimits
		if *quick {
			lim = bench.QuickLimits
		}
		tools := []bench.Tool{bench.ToolAquila, bench.ToolP4V, bench.ToolVera}
		rows, err := bench.Table3(programs, lim, tools)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable3(rows, tools))
		return nil
	})

	run("table4", func() error {
		var list []string
		for _, s := range strings.Split(*scales, ",") {
			list = append(list, strings.TrimSpace(s))
		}
		if *quick {
			list = []string{"small"}
		}
		rows, err := bench.Table4(list)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatTable4(rows))
		return nil
	})

	run("fig11a", func() error {
		maxK := *k
		sc := *scale
		if *quick {
			maxK, sc = 3, "small"
		}
		rows, err := bench.Fig11a(maxK, sc)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig11a(rows))
		return nil
	})

	run("fig11b", func() error {
		var counts []int
		for _, s := range strings.Split(*entries, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			counts = append(counts, n)
		}
		if *quick {
			counts = []int{200, 500, 1000}
		}
		// The paper's 2-hour timeout scales down to 2 minutes here (the
		// naive mode is expected to trip it at >= 4k entries).
		rows, err := bench.Fig11b(counts, *scale, bench.DefaultLimits.Budget, 2*time.Minute)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFig11b(rows))
		return nil
	})

	run("parallel", func() error {
		// The {schedule, portfolio, workers} grid on the DC gateway (scale)
		// and the skewed-telemetry program (load imbalance — the workload
		// the steal schedule exists for).
		var counts []int
		for _, s := range strings.Split(*parallel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			counts = append(counts, n)
		}
		var ks []int
		for _, s := range strings.Split(*portfolios, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			ks = append(ks, n)
		}
		reps := *repeats
		if *quick {
			reps = 1
		}
		res, err := bench.ParallelSuite(
			[]*progs.Benchmark{progs.DCGatewayBench(), progs.SkewedBench()},
			counts, ks, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatParallelSuite(res))
		if *outPath != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *outPath)
		}
		return nil
	})

	run("incremental", func() error {
		// Fresh vs shared-prefix incremental solving on the DC gateway.
		// The worker counts reuse -parallel, capped at 4: the point of the
		// sweep is clause reuse, not scheduler saturation.
		var counts []int
		for _, s := range strings.Split(*parallel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			if n <= 4 {
				counts = append(counts, n)
			}
		}
		reps := *repeats
		if *quick {
			reps = 1
		}
		res, err := bench.Incremental(progs.DCGatewayBench(), counts, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatIncremental(res))
		if *incrOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*incrOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *incrOut)
		}
		return nil
	})

	run("preproc", func() error {
		// The four {preprocess, slice} configurations on the DC gateway,
		// fresh and incremental, against the baseline engine. Worker
		// counts reuse -parallel, capped at 4, like the incremental sweep.
		var counts []int
		for _, s := range strings.Split(*parallel, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			if n <= 4 {
				counts = append(counts, n)
			}
		}
		reps := *repeats
		if *quick {
			reps = 1
		}
		res, err := bench.Preproc(progs.DCGatewayBench(), counts, reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatPreproc(res))
		if *compare != "" {
			data, err := os.ReadFile(*compare)
			if err != nil {
				return err
			}
			var ref bench.PreprocResult
			if err := json.Unmarshal(data, &ref); err != nil {
				return fmt.Errorf("parsing %s: %w", *compare, err)
			}
			if err := bench.ComparePreproc(&ref, res); err != nil {
				return err
			}
			fmt.Printf("no regression vs %s\n", *compare)
		}
		if *prepOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*prepOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *prepOut)
		}
		return nil
	})

	run("churn", func() error {
		// Delta re-verification: a warm Session absorbing single-entry
		// flips on the DC gateway's ECMP table vs a full fresh run per
		// delta, with per-delta canonical byte identity checked.
		ent, n := *churnEnt, *churnN
		if *quick {
			ent, n = 32, 4
		}
		res, err := bench.Churn(ent, 2, n)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatChurn(res))
		if *churnCmp != "" {
			data, err := os.ReadFile(*churnCmp)
			if err != nil {
				return err
			}
			var ref bench.ChurnResult
			if err := json.Unmarshal(data, &ref); err != nil {
				return fmt.Errorf("parsing %s: %w", *churnCmp, err)
			}
			if err := bench.CompareChurn(&ref, res); err != nil {
				return err
			}
			fmt.Printf("no regression vs %s\n", *churnCmp)
		}
		if *churnOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*churnOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *churnOut)
		}
		return nil
	})

	run("serve", func() error {
		// Continuous verification daemon: the churn workload served over
		// HTTP through an in-process aquila-serve, per-delta round trips
		// byte-compared against fresh runs — proving the service layer
		// preserves both determinism and the warm engine's amortization.
		ent, n := *churnEnt, *churnN
		if *quick {
			ent, n = 32, 4
		}
		res, err := bench.Serve(ent, 2, n)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatServe(res))
		if *serveCmp != "" {
			data, err := os.ReadFile(*serveCmp)
			if err != nil {
				return err
			}
			var ref bench.ServeResult
			if err := json.Unmarshal(data, &ref); err != nil {
				return fmt.Errorf("parsing %s: %w", *serveCmp, err)
			}
			if err := bench.CompareServe(&ref, res); err != nil {
				return err
			}
			fmt.Printf("no regression vs %s\n", *serveCmp)
		}
		if *serveOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*serveOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *serveOut)
		}
		return nil
	})

	run("obs", func() error {
		reps := *repeats
		if *quick {
			reps = 1
		}
		res, err := bench.ObsOverhead(progs.DCGatewayBench(), reps)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatObs(res))
		if !*quick && *obsOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*obsOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *obsOut)
		}
		return nil
	})

	run("scale", func() error {
		// The 10–100× campaign: structural multipliers and 10⁴–10⁵ entry
		// sweeps recording wall / peak heap / allocation volume. -quick
		// runs the CI subset (one point per axis).
		var reg *obs.Registry
		if o != nil {
			reg = o.Metrics
		}
		res, err := bench.Scale(*quick, reg)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatScale(res))
		if *scaleCmp != "" {
			data, err := os.ReadFile(*scaleCmp)
			if err != nil {
				return err
			}
			var ref bench.ScaleResult
			if err := json.Unmarshal(data, &ref); err != nil {
				return fmt.Errorf("parsing %s: %w", *scaleCmp, err)
			}
			if err := bench.CompareScale(&ref, res); err != nil {
				return err
			}
			fmt.Printf("no regression vs %s\n", *scaleCmp)
		}
		if *scaleOut != "" {
			data, err := res.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*scaleOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *scaleOut)
		}
		return nil
	})

	run("fuzz", func() error {
		// The §6 self-validation story as a benchmark: rediscover both
		// historical encoder bugs from a fixed seed, then a clean campaign
		// that must end divergence-free.
		rows, err := bench.FuzzCampaigns(1, *quick)
		if err != nil {
			return err
		}
		fmt.Print(bench.FormatFuzz(rows))
		return nil
	})

	if err := closeObs(); err != nil {
		fmt.Fprintf(os.Stderr, "aquila-bench: %v\n", err)
		if code == 0 {
			code = 2
		}
	}
	return code
}

// analyzeMain is the -analyze mode: worker-utilization analytics over a
// Chrome trace, with the optional CI scheduling-regression gate.
func analyzeMain(tracePath, outPath, comparePath, stragglerPath string) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "aquila-bench: %v\n", err)
		return 1
	}
	util, err := obs.AnalyzeTraceFile(tracePath)
	if err != nil {
		return fail(err)
	}
	fmt.Print(obs.FormatUtilization(util))
	if outPath != "" {
		data, err := json.MarshalIndent(util, "", "  ")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if comparePath != "" {
		ref, err := loadUtilization(comparePath)
		if err != nil {
			return fail(err)
		}
		if err := obs.CompareUtilization(ref, util); err != nil {
			return fail(err)
		}
		fmt.Printf("no scheduling regression vs %s\n", comparePath)
	}
	if stragglerPath != "" {
		ref, err := loadUtilization(stragglerPath)
		if err != nil {
			return fail(err)
		}
		if err := obs.CompareStraggler(ref, util); err != nil {
			return fail(err)
		}
		fmt.Printf("straggler index %.2f within gate vs reference %.2f (%s)\n",
			util.StragglerIndex, ref.StragglerIndex, stragglerPath)
	}
	return 0
}

// loadUtilization reads a reference utilization: either a BENCH_obs.json
// (ObsResult with a utilization section) or a bare utilization JSON as
// written by -analyze-out.
func loadUtilization(path string) (*obs.Utilization, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res bench.ObsResult
	if err := json.Unmarshal(data, &res); err == nil && res.Utilization != nil {
		return res.Utilization, nil
	}
	var u obs.Utilization
	if err := json.Unmarshal(data, &u); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if u.Checks == 0 {
		return nil, fmt.Errorf("%s: no utilization data", path)
	}
	return &u, nil
}
