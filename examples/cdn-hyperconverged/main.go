// Hyper-converged P4 CDN — the paper's §7.1 Scenario 2.
//
// A CDN PoP's middle-boxes (scheduler, load balancer, firewall) and L3
// switch share one programmable switch across multiple pipelines
// (Figure 2). The example reproduces the two §7.1 bugs:
//
//  1. the undefined-behaviour bug: `egress_ipv4` is applied for packets
//     with neither an ipv4 nor an ipv6 header (e.g. ARP) whenever
//     mac_config_on is false, and
//  2. the deparser bug: the engineer reassembles the packet via a struct
//     whose header order does not match the wire order.
//
// Run with: go run ./examples/cdn-hyperconverged
package main

import (
	"fmt"
	"log"
	"strings"

	"aquila"
)

const cdnP4 = `
// cdn.p4 — switch + load balancer + scheduler in one device (Figure 2).
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header ipv6_t { bit<8> nextHdr; bit<64> dst_hi; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
struct eg_state_t { bit<1> mac_config_on; bit<8> scratch; }

ethernet_t eth;
ipv4_t ipv4;
ipv6_t ipv6;
tcp_t tcp;
eg_state_t eg_state;

parser SwitchParser {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			0x86dd: parse_ipv6;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			default: accept;
		}
	}
	state parse_ipv6 { extract(ipv6); transition accept; }
	state parse_tcp { extract(tcp); transition accept; }
}

control SwitchIngress {
	action route(bit<9> port) { std_meta.egress_spec = port; }
	action to_lb() { std_meta.egress_spec = 64; }
	action a_drop() { drop(); }
	table l3 {
		key = { ipv4.dst_ip : lpm; }
		actions = { route; to_lb; a_drop; }
		default_action = a_drop;
	}
	apply { if (ipv4.isValid()) { l3.apply(); } }
}

control LBEgress {
	action vip_nat(bit<32> dip) { ipv4.dst_ip = dip; }
	action egress_v6(bit<9> port) { std_meta.egress_spec = port; }
	action egress_v4(bit<9> port) { std_meta.egress_spec = port; }
	table egress_ipv6 {
		key = { ipv6.dst_hi : exact; }
		actions = { egress_v6; }
	}
	table egress_ipv4 {
		key = { ipv4.dst_ip : exact; }
		actions = { egress_v4; vip_nat; }
	}
	apply {
		if (ipv6.isValid()) {
			egress_ipv6.apply();
		} else if (eg_state.mac_config_on == 0 || ipv4.isValid()) {
			// BUG 1 (§7.1): an ARP packet (neither ipv4 nor ipv6) still
			// applies egress_ipv4 when mac_config_on == 0.
			egress_ipv4.apply();
		}
	}
}

deparser SwitchDeparser {
	emit(eth);
	emit(ipv4);
	emit(ipv6);
	emit(tcp);
}

deparser LBDeparser {
	// BUG 2 (§7.1): the reassembly struct was written for another use and
	// emits tcp before ipv4 — the returned packet's header order is wrong.
	emit(eth);
	emit(tcp);
	emit(ipv4);
	emit(ipv6);
}

pipeline switch_pipe { parser = SwitchParser; control = SwitchIngress; deparser = SwitchDeparser; }
pipeline lb_pipe { parser = SwitchParser; control = LBEgress; deparser = LBDeparser; }
`

// The §7.1 scenario-2 specification: per-function correctness, undefined
// behaviour checking, and deparser order correctness.
const cdnSpec = `
assumption {
	arp_pkt {
		pkt.$order == <eth>;              // e.g. an ARP packet
		pkt.eth.etherType == 0x0806;
	}
	tcp_pkt {
		pkt.$order == <eth ipv4 tcp>;
		pkt.eth.etherType == 0x0800;
		pkt.ipv4.protocol == 6;
	}
}
assertion {
	no_undefined = {
		if (applied(egress_ipv4)) valid(ipv4);   // undefined-behaviour check
	}
	deparse_ok = {
		pkt.$out_order == <eth ipv4 tcp>;        // wire order preserved
	}
}
program {
	assume(arp_pkt);
	call(switch_pipe);
	call(lb_pipe);
	assert(no_undefined);
}
`

const cdnDeparseSpec = `
assumption {
	tcp_pkt {
		pkt.$order == <eth ipv4 tcp>;
		pkt.eth.etherType == 0x0800;
		pkt.ipv4.protocol == 6;
	}
}
assertion {
	deparse_ok = { pkt.$out_order == <eth ipv4 tcp>; }
}
program {
	assume(tcp_pkt);
	call(lb_pipe);
	assert(deparse_ok);
}
`

func main() {
	prog, err := aquila.ParseProgram("cdn.p4", cdnP4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== bug 1: undefined header access on ARP packets ==")
	spec1, err := aquila.ParseSpec(cdnSpec)
	if err != nil {
		log.Fatal(err)
	}
	report, err := aquila.Verify(prog, nil, spec1, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())
	if report.Holds {
		log.Fatal("the undefined-behaviour bug should be detected")
	}

	fmt.Println("\n== bug 2: deparser header order ==")
	spec2, err := aquila.ParseSpec(cdnDeparseSpec)
	if err != nil {
		log.Fatal(err)
	}
	report2, err := aquila.Verify(prog, nil, spec2, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report2.String())
	if report2.Holds {
		log.Fatal("the deparser-order bug should be detected")
	}

	// Fix both bugs and re-verify.
	fixed := strings.Replace(cdnP4,
		"} else if (eg_state.mac_config_on == 0 || ipv4.isValid()) {",
		"} else if (ipv4.isValid()) {", 1)
	fixed = strings.Replace(fixed, "emit(eth);\n\temit(tcp);\n\temit(ipv4);\n\temit(ipv6);",
		"emit(eth);\n\temit(ipv4);\n\temit(ipv6);\n\temit(tcp);", 1)
	prog2, err := aquila.ParseProgram("cdn_fixed.p4", fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after the fixes ==")
	for name, spec := range map[string]*aquila.Spec{"undefined-behaviour": spec1, "deparser-order": spec2} {
		rep, err := aquila.Verify(prog2, nil, spec, aquila.Options{FindAll: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: holds=%v\n", name, rep.Holds)
		if !rep.Holds {
			log.Fatalf("fixed program should verify %s:\n%s", name, rep.String())
		}
	}
}
