// Traffic statistics for monitoring — the paper's §7.1 Scenario 1.
//
// A VXLAN gateway replaces the statistics servers: it copies business
// traffic, sends originals back to the metropolitan router, and adds
// statistics metadata to the copies. The example reproduces the two real
// bugs Aquila caught in production:
//
//  1. the old-traffic handler zeroes the original packet's metadata
//     (backend servers then read the wrong state), and
//  2. a copy-and-paste error in the register-statistics code.
//
// Run with: go run ./examples/traffic-stats
package main

import (
	"fmt"
	"log"
	"strings"

	"aquila"
)

const gatewayP4 = `
// vxlan_gateway.p4 — traffic statistics offloaded from servers (§7.1).
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> dscp; bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header udp_t { bit<16> src_port; bit<16> dst_port; }
header vxlan_t { bit<24> vni; bit<8> reserved; }
header stats_t { bit<16> qlen; bit<16> class; }
struct gw_md_t { bit<8> state; bit<1> known; }

ethernet_t eth;
ipv4_t ipv4;
udp_t udp;
vxlan_t vxlan;
stats_t stats;
gw_md_t gw_md;

register<bit<32>>(4096) flow_count;
register<bit<32>>(4096) byte_count;

parser GwParser {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			17: parse_udp;
			default: accept;
		}
	}
	state parse_udp {
		extract(udp);
		transition select(udp.dst_port) {
			4789: parse_vxlan;
			default: accept;
		}
	}
	state parse_vxlan { extract(vxlan); transition accept; }
}

control GwIngress {
	action handle_known() {
		// BUG 1 (§7.1): the original packet's metadata state is zeroed
		// instead of preserved, so the backend reads the wrong state.
		gw_md.state = 0;
		std_meta.egress_spec = 1; // back to the metropolitan router
	}
	action handle_new() {
		gw_md.known = 0;
		stats.setValid();
		stats.qlen = 7;
	}
	action count_flows() { flow_count.write(0, 1); }
	action count_bytes() {
		// BUG 2 (§7.1): copy-and-paste — the pasted line still updates
		// flow_count instead of byte_count.
		flow_count.write(0, 2);
	}
	action mark_dscp() { ipv4.dscp = 3; }
	action a_drop() { drop(); }
	table traffic_tbl {
		key = { ipv4.dst_ip : lpm; }
		actions = { handle_known; handle_new; a_drop; }
		default_action = a_drop;
	}
	table stats_tbl {
		key = { gw_md.known : exact; }
		actions = { count_flows; count_bytes; }
	}
	table dscp_tbl {
		key = { ipv4.dst_ip : lpm; }
		actions = { mark_dscp; }
	}
	apply {
		if (ipv4.isValid()) {
			gw_md.state = 5; // state computed earlier in the pipeline
			traffic_tbl.apply();
			stats_tbl.apply();
			dscp_tbl.apply();
		}
	}
}

deparser GwDeparser { emit(eth); emit(ipv4); emit(udp); emit(vxlan); emit(stats); }
pipeline gateway { parser = GwParser; control = GwIngress; deparser = GwDeparser; }
`

// The §7.1 specification: (1) known traffic keeps its state and goes back
// to the router; (2) new traffic gets the stats metadata header; (3)
// fields are evaluated correctly — packets to 10/8 get the queue-length
// metadata, byte statistics land in the byte_count register.
const gatewaySpec = `
assumption {
	init {
		pkt.$order == <eth ipv4 udp vxlan>;
		pkt.eth.etherType == 0x0800;
		pkt.ipv4.protocol == 17;
		pkt.udp.dst_port == 4789;
		reg.byte_count == 0;
	}
}
assertion {
	monitoring = {
		if (match(traffic_tbl, handle_known)) gw_md.state == 5;
		if (match(traffic_tbl, handle_known)) std_meta.egress_spec == 1;
		if (match(traffic_tbl, handle_new)) valid(stats);
		if (match(traffic_tbl, handle_new)) stats.qlen == 7;
		if (match(stats_tbl, count_bytes)) reg.byte_count != 0;
	}
}
program {
	assume(init);
	call(gateway);
	assert(monitoring);
}
`

func main() {
	prog, err := aquila.ParseProgram("vxlan_gateway.p4", gatewayP4)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := aquila.ParseSpec(gatewaySpec)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := aquila.ParseSnapshot(`
table GwIngress.traffic_tbl {
  10.0.0.0/8 -> handle_known
  20.0.0.0/8 -> handle_new
}
table GwIngress.stats_tbl {
  1 -> count_flows
  0 -> count_bytes
}
table GwIngress.dscp_tbl {
  10.0.0.0/8 -> mark_dscp
}`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== verifying the buggy gateway (the two §7.1 production bugs) ==")
	report, err := aquila.Verify(prog, snap, spec, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())
	if report.Holds {
		log.Fatal("expected the seeded production bugs to be detected")
	}

	fmt.Println("\n== localizing ==")
	result, err := aquila.Localize(prog, snap, spec, aquila.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.String())

	// Fix both bugs and re-verify.
	fixed := strings.Replace(gatewayP4, "gw_md.state = 0;", "/* keep gw_md.state */", 1)
	fixed = strings.Replace(fixed, "flow_count.write(0, 2);", "byte_count.write(0, 2);", 1)
	prog2, err := aquila.ParseProgram("vxlan_gateway_fixed.p4", fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== verifying the fixed gateway ==")
	report2, err := aquila.Verify(prog2, snap, spec, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report2.String())
	if !report2.Holds {
		log.Fatal("the fixed gateway should verify")
	}
}
