// Quickstart: the paper's Figure 6 example end to end — forward.p4
// changes TCP and UDP packets destined to 10.0.0.1 so they go to 10.0.0.2;
// the LPI spec checks it; a broken table entry is then localized.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aquila"
)

const forwardP4 = `
// forward.p4 (Figure 6's subject program)
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
header tcp_t { bit<16> src_port; bit<16> dst_port; }
header udp_t { bit<16> src_port; bit<16> dst_port; }
struct ig_md_t { bit<1> redirected; }

ethernet_t ethernet;
ipv4_t ipv4;
tcp_t tcp;
udp_t udp;
ig_md_t ig_md;

parser IngressParser {
	state start {
		extract(ethernet);
		transition select(ethernet.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 {
		extract(ipv4);
		transition select(ipv4.protocol) {
			6: parse_tcp;
			17: parse_udp;
			default: accept;
		}
	}
	state parse_tcp { extract(tcp); transition accept; }
	state parse_udp { extract(udp); transition accept; }
}

control Ingress {
	action send(bit<9> port) { std_meta.egress_spec = port; }
	action rewrite() { ipv4.dst_ip = 10.0.0.2; ig_md.redirected = 1; }
	action a_drop() { drop(); }
	table fwd {
		key = { ipv4.dst_ip : exact; }
		actions = { rewrite; send; a_drop; }
		default_action = send(1);
	}
	apply {
		if (ipv4.isValid()) { fwd.apply(); }
	}
}

deparser IngressDeparser { emit(ethernet); emit(ipv4); emit(tcp); emit(udp); }

pipeline ingress_pipeline {
	parser = IngressParser;
	control = Ingress;
	deparser = IngressDeparser;
}
`

// The Figure 6 specification, near-verbatim: packets from an even port
// with headers eth/ipv4/(tcp|udp) to 10.0.0.1 must leave for 10.0.0.2,
// the fwd/rewrite hit must be the cause, and the TCP header must be
// unchanged (the Figure 3 property).
const forwardSpec = `
assumption {
	init {
		std_meta.ingress_port & 0x1 == 0;           // Even port#
		pkt.$order == <ethernet ipv4 (tcp|udp)>;    // TCP or UDP header
		pkt.ethernet.etherType == 0x0800;
		if (valid(tcp)) pkt.ipv4.protocol == 6;
		pkt.ipv4.dst_ip == 10.0.0.1;                // Dst. IP
	}
}
assertion {
	pipe_in = {
		ipv4.dst_ip == 10.0.0.2;                    // Send to 10.0.0.2
		if (match(fwd, rewrite)) modified(pkt.ipv4.dst_ip);
		keep(tcp);                                  // Figure 3's property
	}
}
program {
	assume(init);
	call(ingress_pipeline);
	assert(pipe_in);
	#quit = (std_meta.drop == 1) || (std_meta.to_cpu == 1);
	if (!#quit) {
		// Further pipelines would be called here (Figure 6 lines 23-26).
	}
}
`

func main() {
	prog, err := aquila.ParseProgram("forward.p4", forwardP4)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := aquila.ParseSpec(forwardSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec size: %d effective LPI lines (the p4v/Vera equivalents need 20+ per property, Figure 3)\n\n",
		aquila.SpecLoC(forwardSpec))

	// 1. Verify with the correct entry installed.
	good, err := aquila.ParseSnapshot(`
table Ingress.fwd {
  10.0.0.1 -> rewrite
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== verifying with the correct entry ==")
	report, err := aquila.Verify(prog, good, spec, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	// 2. Break the control plane: the operator installs `send` instead of
	// `rewrite`. Verification finds it; localization blames the entry.
	bad, err := aquila.ParseSnapshot(`
table Ingress.fwd {
  10.0.0.1 -> send(4)
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== verifying with a wrong entry (send instead of rewrite) ==")
	report, err = aquila.Verify(prog, bad, spec, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())

	fmt.Println("\n== localizing the bug ==")
	result, err := aquila.Localize(prog, bad, spec, aquila.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result.String())

	// 3. Self-validate the encoder on this program (§6).
	fmt.Println("\n== self-validating the encoder ==")
	val, err := aquila.SelfValidate(prog, good, []string{"ingress_pipeline"}, aquila.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(val.String())
}
