// Checking bugs before updates — the paper's §7.1 Scenario 3.
//
// An update swaps the load-balancer and switch pipelines. The load
// balancer's NAT rewrites destination 10.0.1/24 to 20.0.1/24; the
// switch's ACL accepts 10.0.1/24 but drops 20.0.1/24. Before the update
// the ACL runs first, so traffic passes; after the update the NAT runs
// first and the ACL then drops everything destined to 10.0.1/24 — the
// critical bug Aquila caught before the update went online.
//
// Run with: go run ./examples/update-check
package main

import (
	"fmt"
	"log"

	"aquila"
)

const baseP4 = `
header ethernet_t { bit<48> dst; bit<48> src; bit<16> etherType; }
header ipv4_t { bit<8> ttl; bit<8> protocol; bit<32> src_ip; bit<32> dst_ip; }
ethernet_t eth;
ipv4_t ipv4;

parser P {
	state start {
		extract(eth);
		transition select(eth.etherType) {
			0x0800: parse_ipv4;
			default: accept;
		}
	}
	state parse_ipv4 { extract(ipv4); transition accept; }
}

control SwitchCtl {
	action accept_pkt() { std_meta.egress_spec = 1; }
	action a_drop() { drop(); }
	table acl {
		key = { ipv4.dst_ip : lpm; }
		actions = { accept_pkt; a_drop; }
		default_action = a_drop;
	}
	apply { if (ipv4.isValid()) { acl.apply(); } }
}

control LBCtl {
	action nat(bit<32> dip) { ipv4.dst_ip = dip; }
	action pass() { }
	table fwd {
		key = { ipv4.dst_ip : lpm; }
		actions = { nat; pass; }
		default_action = pass;
	}
	apply { if (ipv4.isValid()) { fwd.apply(); } }
}

deparser D { emit(eth); emit(ipv4); }

pipeline switch_pipe { parser = P; control = SwitchCtl; deparser = D; }
pipeline lb_pipe { parser = P; control = LBCtl; deparser = D; }
`

// specBefore drives the pre-update pipeline order: switch (ACL) first,
// then the load balancer (NAT).
const specBefore = `
assumption { init {
	pkt.$order == <eth ipv4>;
	pkt.eth.etherType == 0x0800;
	pkt.ipv4.dst_ip & 0xFFFFFF00 == 10.0.1.0;
} }
assertion { delivered = {
	std_meta.drop == 0;
	ipv4.dst_ip & 0xFFFFFF00 == 20.0.1.0;
} }
program {
	assume(init);
	call(switch_pipe);
	call(lb_pipe);
	assert(delivered);
}
`

// specAfter is the identical specification on the updated (swapped)
// pipeline order — "for the update scenarios, we typically use the
// original specification" (§7.1).
const specAfter = `
assumption { init {
	pkt.$order == <eth ipv4>;
	pkt.eth.etherType == 0x0800;
	pkt.ipv4.dst_ip & 0xFFFFFF00 == 10.0.1.0;
} }
assertion { delivered = {
	std_meta.drop == 0;
	ipv4.dst_ip & 0xFFFFFF00 == 20.0.1.0;
} }
program {
	assume(init);
	call(lb_pipe);
	call(switch_pipe);
	assert(delivered);
}
`

const entries = `
table SwitchCtl.acl {
  10.0.1.0/24 -> accept_pkt
  20.0.1.0/24 -> a_drop
}
table LBCtl.fwd {
  10.0.1.0/24 -> nat(0x14000100)
}
`

func main() {
	prog, err := aquila.ParseProgram("update.p4", baseP4)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := aquila.ParseSnapshot(entries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== before the update: switch(ACL) -> load balancer(NAT) ==")
	before, err := aquila.ParseSpec(specBefore)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := aquila.Verify(prog, snap, before, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	if !rep.Holds {
		log.Fatal("pre-update behaviour should satisfy the spec")
	}

	fmt.Println("\n== after the update: load balancer(NAT) -> switch(ACL) ==")
	after, err := aquila.ParseSpec(specAfter)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := aquila.Verify(prog, snap, after, aquila.Options{FindAll: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep2.String())
	if rep2.Holds {
		log.Fatal("the swapped order should violate the spec (NAT then ACL drops)")
	}
	fmt.Println("\nThe update would have blocked all traffic to 10.0.1/24 — caught before rollout (§7.1).")

	fmt.Println("\n== localizing the post-update violation ==")
	res, err := aquila.Localize(prog, snap, after, aquila.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
}
