module aquila

go 1.22
